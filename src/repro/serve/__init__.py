"""The persistent simulation service (``repro serve``).

A long-lived asyncio daemon over the orchestration stack: JSON-over-
HTTP submission of cells and sweeps, single-flight coalescing keyed by
the result cache's content hash, a warm worker pool that amortizes
process startup and prep loading across requests, bounded-queue
backpressure, and first-class observability (``/healthz``,
``/metrics``, per-request JSONL audit logs).

Layers (dependency order):

* :mod:`repro.serve.http` — minimal HTTP/1.1 framing over asyncio
  streams (the stdlib has no asyncio HTTP server; zero new deps).
* :mod:`repro.serve.metrics` — counters + latency windows behind
  ``/metrics``.
* :mod:`repro.serve.pool` — the warm ``ProcessPoolExecutor`` with
  :class:`~repro.bench.runner.ExperimentRunner`'s retry/timeout/
  rebuild policy.
* :mod:`repro.serve.service` — the daemon itself: routes, admission,
  single-flight table, batching dispatcher, drain contract.
* :mod:`repro.serve.client` — blocking stdlib client
  (``repro submit``, tests).
* :mod:`repro.serve.load` — loopback load harness (tests, CI smoke),
  including the supervised-cluster harness.

Cluster layer (``repro cluster``), built on the same framing:

* :mod:`repro.serve.ring` — consistent-hash ring (stable blake2b
  points, virtual nodes, minimal remapping on membership change).
* :mod:`repro.serve.router` — the router daemon: places each cell on
  the ring by its result-cache content hash, so single-flight
  coalescing stays exactly-once across the whole cluster; failover to
  ring successors is idempotent by construction.
* :mod:`repro.serve.supervisor` — local shard supervisor (spawn,
  monitor, restart with exponential backoff).

Responses are bit-identical to direct
:func:`repro.analysis.experiment.run_version` calls; the equivalence
suite pins this against the frozen fixture.
"""

from repro.serve.client import ServiceClient, ServiceError
from repro.serve.ring import HashRing
from repro.serve.router import BackgroundRouter, Router, RouterConfig
from repro.serve.service import (
    AuditEvent,
    BackgroundService,
    ServeConfig,
    SimulationService,
    normalize_cell,
)
from repro.serve.supervisor import ClusterSupervisor

__all__ = [
    "AuditEvent",
    "BackgroundRouter",
    "BackgroundService",
    "ClusterSupervisor",
    "HashRing",
    "Router",
    "RouterConfig",
    "ServeConfig",
    "ServiceClient",
    "ServiceError",
    "SimulationService",
    "normalize_cell",
]
