"""The persistent simulation service (``repro serve``).

A long-lived asyncio daemon over the orchestration stack: JSON-over-
HTTP submission of cells and sweeps, single-flight coalescing keyed by
the result cache's content hash, a warm worker pool that amortizes
process startup and prep loading across requests, bounded-queue
backpressure, and first-class observability (``/healthz``,
``/metrics``, per-request JSONL audit logs).

Layers (dependency order):

* :mod:`repro.serve.http` — minimal HTTP/1.1 framing over asyncio
  streams (the stdlib has no asyncio HTTP server; zero new deps).
* :mod:`repro.serve.metrics` — counters + latency windows behind
  ``/metrics``.
* :mod:`repro.serve.pool` — the warm ``ProcessPoolExecutor`` with
  :class:`~repro.bench.runner.ExperimentRunner`'s retry/timeout/
  rebuild policy.
* :mod:`repro.serve.service` — the daemon itself: routes, admission,
  single-flight table, batching dispatcher, drain contract.
* :mod:`repro.serve.client` — blocking stdlib client
  (``repro submit``, tests).
* :mod:`repro.serve.load` — loopback load harness (tests, CI smoke).

Responses are bit-identical to direct
:func:`repro.analysis.experiment.run_version` calls; the equivalence
suite pins this against the frozen fixture.
"""

from repro.serve.client import ServiceClient, ServiceError
from repro.serve.service import (
    AuditEvent,
    BackgroundService,
    ServeConfig,
    SimulationService,
    normalize_cell,
)

__all__ = [
    "AuditEvent",
    "BackgroundService",
    "ServeConfig",
    "ServiceClient",
    "ServiceError",
    "SimulationService",
    "normalize_cell",
]
