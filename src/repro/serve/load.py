"""Loopback load harness: fire concurrent mixed traffic at a daemon.

The concurrency test suite and the CI serve-smoke job share this
module.  It drives a running service with ``threads`` clients issuing
a mixed hot/cold/duplicate request stream, then checks the service's
own ``/metrics`` against the invariants the design promises:

* every request is answered (no drops, no transport errors);
* **single-flight**: each distinct cold cell is computed exactly once
  — ``metrics.computations`` equals the number of distinct keys that
  were not already cached;
* duplicate requests are served from the cache or coalesced onto the
  in-flight computation, never recomputed;
* all responses for one key carry byte-identical summaries.

Standalone (the CI smoke job)::

    python -m repro.serve.load --spawn --jobs 0 --requests 48 \
        --dup-fraction 0.5 --audit audit.jsonl --metrics-out metrics.json

``--spawn`` boots a real ``python -m repro serve`` subprocess on an
ephemeral port, runs the load, SIGTERMs it, and requires a graceful
exit code 0 — the drain contract, exercised end to end.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from typing import List, Optional

from repro.serve.client import ServiceClient

__all__ = ["ClusterHarness", "default_cells", "run_load",
           "spawn_server", "main"]


def default_cells(n_distinct: int = 6) -> List[dict]:
    """A pool of small, fast, *distinct* cells (distinct cache keys)."""
    versions = ("libcsr", "libcsb", "deepsparse", "hpx", "regent")
    cells = []
    for i in range(n_distinct):
        cells.append({
            "machine": "broadwell",
            "matrix": "inline1",
            "solver": "lanczos",
            "version": versions[i % len(versions)],
            "block_count": 16 + 16 * (i // len(versions)),
            "iterations": 1,
        })
    return cells


def run_load(port: int, host: str = "127.0.0.1",
             n_requests: int = 48, dup_fraction: float = 0.5,
             threads: int = 16, cells: Optional[List[dict]] = None,
             seed: int = 0, mid_load=None, strict: bool = True) -> dict:
    """Drive the daemon; returns a report dict (see ``ok`` key).

    The request stream is built up front: ``dup_fraction`` of the
    requests re-ask an already-scheduled cell (duplicates), the rest
    walk the distinct-cell pool round-robin.  Shuffled, then issued
    from ``threads`` concurrent clients so hot, cold, and duplicate
    requests genuinely interleave.

    ``mid_load`` is a zero-arg callable fired exactly once, from a
    worker thread, when a third of the responses have landed — the
    chaos harness uses it to SIGKILL a shard while traffic is in
    flight.  ``strict=False`` relaxes the two invariants a mid-load
    kill legitimately breaks (all-200 statuses and the computations
    accounting, since a killed shard's counters die with it); answered
    requests and bit-identical summaries per key are always enforced.
    """
    rng = random.Random(seed)
    pool = cells if cells is not None else default_cells()
    n_dup = int(n_requests * dup_fraction)
    stream = [dict(pool[i % len(pool)])
              for i in range(n_requests - n_dup)]
    stream += [dict(rng.choice(stream)) for _ in range(n_dup)]
    rng.shuffle(stream)

    with ServiceClient(host, port) as probe:
        before = probe.metrics()

    lock = threading.Lock()
    responses: List[dict] = []
    errors: List[str] = []
    it = iter(list(enumerate(stream)))
    mid_fired = threading.Event()

    def worker():
        with ServiceClient(host, port) as client:
            while True:
                with lock:
                    try:
                        idx, doc = next(it)
                    except StopIteration:
                        return
                try:
                    payload = client.submit_cell(check=False, **doc)
                except Exception as e:
                    with lock:
                        errors.append(f"request {idx}: "
                                      f"{type(e).__name__}: {e}")
                    continue
                with lock:
                    responses.append(payload)
                    fire_mid = (mid_load is not None
                                and not mid_fired.is_set()
                                and len(responses) >= n_requests // 3)
                    if fire_mid:
                        mid_fired.set()
                if fire_mid:
                    mid_load()   # outside the lock: it may take a while

    t0 = time.perf_counter()
    crew = [threading.Thread(target=worker) for _ in range(threads)]
    for t in crew:
        t.start()
    for t in crew:
        t.join()
    elapsed = time.perf_counter() - t0

    with ServiceClient(host, port) as probe:
        after = probe.metrics()
        health = probe.healthz()

    # -- invariants ----------------------------------------------------
    by_key = {}
    statuses = {}
    for p in responses:
        statuses[p["status"]] = statuses.get(p["status"], 0) + 1
        if p["status"] == 200:
            body = json.dumps(p["summary"], sort_keys=True)
            by_key.setdefault(p["key"], set()).add(body)
    torn = {k for k, bodies in by_key.items() if len(bodies) > 1}
    if torn:
        errors.append(f"non-identical summaries for key(s): "
                      f"{sorted(torn)}")
    if len(responses) != n_requests:
        errors.append(f"answered {len(responses)}/{n_requests} requests")
    if strict and statuses.get(200, 0) != n_requests:
        errors.append(f"non-200 responses: {statuses}")
    computed = after["computations"] - before["computations"]
    if strict and computed > len(by_key):
        errors.append(
            f"single-flight violated: {computed} computations for "
            f"{len(by_key)} distinct keys")

    report = {
        "ok": not errors,
        "errors": errors,
        "elapsed_s": elapsed,
        "n_requests": n_requests,
        "n_distinct_keys": len(by_key),
        "n_duplicates_sent": n_dup,
        "statuses": statuses,
        "computations": computed,
        "sources": {
            s: after["requests"][s] - before["requests"].get(s, 0)
            for s in after["requests"]
        },
        "metrics": after,
        "healthz": health,
    }
    return report


# ----------------------------------------------------------------------
class ClusterHarness:
    """A supervised shard cluster plus an in-process router.

    The cluster analogue of ``--spawn``: boots ``n_shards`` real
    ``repro serve`` subprocesses through the
    :class:`~repro.serve.supervisor.ClusterSupervisor`, stands a
    :class:`~repro.serve.router.BackgroundRouter` in front of them,
    and wires supervisor membership pushes into the router's ring.
    ``run_load(harness.port)`` then drives the whole cluster through
    one port.

    ::

        with ClusterHarness(3, base_dir, jobs=0) as h:
            report = run_load(h.port, mid_load=h.kill_one,
                              strict=False)
        assert all(rc == 0 for rc in h.exit_codes.values())
    """

    def __init__(self, n_shards: int, base_dir: str, *,
                 jobs: int = 0, extra_env: Optional[dict] = None):
        from repro.serve.supervisor import ClusterSupervisor

        self.base_dir = base_dir
        self.supervisor = ClusterSupervisor(
            n_shards, base_dir, jobs=jobs, extra_env=extra_env)
        self.background = None
        self.killed: List[str] = []
        self.exit_codes: dict = {}

    @property
    def port(self) -> int:
        return self.background.port

    @property
    def router(self):
        return self.background.router

    def start(self) -> "ClusterHarness":
        from repro.serve.router import BackgroundRouter, RouterConfig

        self.supervisor.start()
        config = RouterConfig(port=0, members=self.supervisor.members(),
                              probe_interval=0.2)
        self.background = BackgroundRouter(config).start()
        self.supervisor.on_membership = \
            self.background.router.update_members_threadsafe
        return self

    def kill_one(self) -> str:
        """SIGKILL one live shard (the chaos ``mid_load`` hook)."""
        members = self.supervisor.members()
        name = sorted(members)[0]
        self.killed.append(name)
        self.supervisor.kill(name)
        return name

    def await_recovery(self, timeout: float = 30.0) -> None:
        """Block until every shard is back in membership.

        After a chaos kill the monitor respawns the victim on a
        backoff; tearing down before that happens would skip the
        restart path entirely (and record the SIGKILL, not a drain,
        as the victim's exit).
        """
        deadline = time.monotonic() + timeout
        want = len(self.supervisor.shards)
        while time.monotonic() < deadline:
            if len(self.supervisor.members()) == want:
                return
            time.sleep(0.05)
        raise RuntimeError(
            f"cluster did not recover to {want} shards within "
            f"{timeout:.0f}s (members: {sorted(self.supervisor.members())})")

    def stop(self) -> None:
        if self.killed:
            self.await_recovery()
        if self.background is not None:
            self.background.stop()
        self.exit_codes = self.supervisor.stop()

    def __enter__(self) -> "ClusterHarness":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


# ----------------------------------------------------------------------
def spawn_server(jobs: int = 0, audit: Optional[str] = None,
                 extra_env: Optional[dict] = None,
                 timeout: float = 60.0):
    """Boot ``python -m repro serve`` on an ephemeral port.

    Returns ``(process, port)``; the caller owns shutdown.  The daemon
    announces its bound port on stdout — parsed here rather than
    racing a port-scan.
    """
    import os
    import re
    import subprocess

    cmd = [sys.executable, "-m", "repro", "serve",
           "--port", "0", "--jobs", str(jobs)]
    if audit:
        cmd += ["--audit", audit]
    env = dict(os.environ)
    env.update(extra_env or {})
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True,
                            env=env)
    deadline = time.monotonic() + timeout
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise RuntimeError(
                f"server died during startup (rc={proc.returncode})")
        m = re.search(r"listening on http://[^:]+:(\d+)", line)
        if m:
            return proc, int(m.group(1))
    proc.kill()
    raise RuntimeError("server did not announce a port in time")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.load",
        description="loopback load harness for the simulation service")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8477,
                        help="existing daemon to target (ignored "
                             "with --spawn)")
    parser.add_argument("--spawn", action="store_true",
                        help="boot a daemon subprocess, load it, "
                             "SIGTERM it, require exit 0")
    parser.add_argument("--cluster", type=int, default=0, metavar="N",
                        help="boot N supervised shards plus a "
                             "consistent-hash router and drive the "
                             "load through the router")
    parser.add_argument("--chaos-kill", action="store_true",
                        help="with --cluster: SIGKILL one shard once "
                             "a third of the responses have landed "
                             "(relaxes the all-200 and computations "
                             "invariants; the supervisor must restart "
                             "it and every shard must still drain "
                             "with exit 0)")
    parser.add_argument("--cluster-dir", default=None,
                        help="cluster base directory (audit/, cache/, "
                             "logs/ artifacts; default: a temp dir)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes for --spawn/--cluster")
    parser.add_argument("--requests", type=int, default=48)
    parser.add_argument("--dup-fraction", type=float, default=0.5)
    parser.add_argument("--threads", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--audit", default=None,
                        help="audit JSONL path for the spawned daemon")
    parser.add_argument("--metrics-out", default=None,
                        help="write the final report JSON here")
    args = parser.parse_args(argv)

    if args.cluster:
        return _cluster_main(args)

    proc = None
    port = args.port
    if args.spawn:
        proc, port = spawn_server(jobs=args.jobs, audit=args.audit)
        print(f"spawned daemon pid={proc.pid} port={port}")
    try:
        report = run_load(port, host=args.host,
                          n_requests=args.requests,
                          dup_fraction=args.dup_fraction,
                          threads=args.threads, seed=args.seed)
    finally:
        if proc is not None:
            import signal

            proc.send_signal(signal.SIGTERM)
            try:
                rc = proc.wait(timeout=60)
            except Exception:
                proc.kill()
                rc = -9
            tail = proc.stdout.read() or ""
            if rc != 0:
                print(f"daemon exited rc={rc} (want 0 after SIGTERM)",
                      file=sys.stderr)
                print(tail, file=sys.stderr)

    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=True)
    summary = {k: report[k] for k in
               ("ok", "elapsed_s", "n_requests", "n_distinct_keys",
                "computations", "statuses", "sources")}
    print(json.dumps(summary, indent=2, sort_keys=True))
    if report["errors"]:
        for err in report["errors"]:
            print(f"INVARIANT: {err}", file=sys.stderr)
    drain_failed = proc is not None and proc.returncode != 0
    return 0 if report["ok"] and not drain_failed else 1


def _cluster_main(args) -> int:
    """``--cluster N`` entry: shards + router, load, graceful teardown."""
    import tempfile

    base = args.cluster_dir or tempfile.mkdtemp(prefix="repro-cluster-")
    harness = ClusterHarness(args.cluster, base, jobs=args.jobs)
    with harness:
        print(f"cluster up: {args.cluster} shards + router "
              f"on port {harness.port} (base: {base})", flush=True)
        report = run_load(harness.port, host=args.host,
                          n_requests=args.requests,
                          dup_fraction=args.dup_fraction,
                          threads=args.threads, seed=args.seed,
                          mid_load=(harness.kill_one if args.chaos_kill
                                    else None),
                          strict=not args.chaos_kill)
    report["cluster"] = {
        "base_dir": base,
        "n_shards": args.cluster,
        "killed": harness.killed,
        "exit_codes": harness.exit_codes,
        "restarts": {s.name: s.restarts
                     for s in harness.supervisor.shards},
    }
    bad_exits = {name: rc for name, rc in harness.exit_codes.items()
                 if rc != 0}
    if bad_exits:
        report["ok"] = False
        report["errors"].append(
            f"shard drain exit codes (want all 0): {bad_exits}")
    if args.chaos_kill and not harness.killed:
        report["ok"] = False
        report["errors"].append("--chaos-kill never fired (load too "
                                "small to cross the mid-load mark?)")

    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=True)
    summary = {k: report[k] for k in
               ("ok", "elapsed_s", "n_requests", "n_distinct_keys",
                "computations", "statuses", "cluster")}
    print(json.dumps(summary, indent=2, sort_keys=True))
    for err in report["errors"]:
        print(f"INVARIANT: {err}", file=sys.stderr)
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
