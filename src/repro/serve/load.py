"""Loopback load harness: fire concurrent mixed traffic at a daemon.

The concurrency test suite and the CI serve-smoke job share this
module.  It drives a running service with ``threads`` clients issuing
a mixed hot/cold/duplicate request stream, then checks the service's
own ``/metrics`` against the invariants the design promises:

* every request is answered (no drops, no transport errors);
* **single-flight**: each distinct cold cell is computed exactly once
  — ``metrics.computations`` equals the number of distinct keys that
  were not already cached;
* duplicate requests are served from the cache or coalesced onto the
  in-flight computation, never recomputed;
* all responses for one key carry byte-identical summaries.

Standalone (the CI smoke job)::

    python -m repro.serve.load --spawn --jobs 0 --requests 48 \
        --dup-fraction 0.5 --audit audit.jsonl --metrics-out metrics.json

``--spawn`` boots a real ``python -m repro serve`` subprocess on an
ephemeral port, runs the load, SIGTERMs it, and requires a graceful
exit code 0 — the drain contract, exercised end to end.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from typing import List, Optional

from repro.serve.client import ServiceClient

__all__ = ["default_cells", "run_load", "spawn_server", "main"]


def default_cells(n_distinct: int = 6) -> List[dict]:
    """A pool of small, fast, *distinct* cells (distinct cache keys)."""
    versions = ("libcsr", "libcsb", "deepsparse", "hpx", "regent")
    cells = []
    for i in range(n_distinct):
        cells.append({
            "machine": "broadwell",
            "matrix": "inline1",
            "solver": "lanczos",
            "version": versions[i % len(versions)],
            "block_count": 16 + 16 * (i // len(versions)),
            "iterations": 1,
        })
    return cells


def run_load(port: int, host: str = "127.0.0.1",
             n_requests: int = 48, dup_fraction: float = 0.5,
             threads: int = 16, cells: Optional[List[dict]] = None,
             seed: int = 0) -> dict:
    """Drive the daemon; returns a report dict (see ``ok`` key).

    The request stream is built up front: ``dup_fraction`` of the
    requests re-ask an already-scheduled cell (duplicates), the rest
    walk the distinct-cell pool round-robin.  Shuffled, then issued
    from ``threads`` concurrent clients so hot, cold, and duplicate
    requests genuinely interleave.
    """
    rng = random.Random(seed)
    pool = cells if cells is not None else default_cells()
    n_dup = int(n_requests * dup_fraction)
    stream = [dict(pool[i % len(pool)])
              for i in range(n_requests - n_dup)]
    stream += [dict(rng.choice(stream)) for _ in range(n_dup)]
    rng.shuffle(stream)

    with ServiceClient(host, port) as probe:
        before = probe.metrics()

    lock = threading.Lock()
    responses: List[dict] = []
    errors: List[str] = []
    it = iter(list(enumerate(stream)))

    def worker():
        with ServiceClient(host, port) as client:
            while True:
                with lock:
                    try:
                        idx, doc = next(it)
                    except StopIteration:
                        return
                try:
                    payload = client.submit_cell(check=False, **doc)
                except Exception as e:
                    with lock:
                        errors.append(f"request {idx}: "
                                      f"{type(e).__name__}: {e}")
                    continue
                with lock:
                    responses.append(payload)

    t0 = time.perf_counter()
    crew = [threading.Thread(target=worker) for _ in range(threads)]
    for t in crew:
        t.start()
    for t in crew:
        t.join()
    elapsed = time.perf_counter() - t0

    with ServiceClient(host, port) as probe:
        after = probe.metrics()
        health = probe.healthz()

    # -- invariants ----------------------------------------------------
    by_key = {}
    statuses = {}
    for p in responses:
        statuses[p["status"]] = statuses.get(p["status"], 0) + 1
        if p["status"] == 200:
            body = json.dumps(p["summary"], sort_keys=True)
            by_key.setdefault(p["key"], set()).add(body)
    torn = {k for k, bodies in by_key.items() if len(bodies) > 1}
    if torn:
        errors.append(f"non-identical summaries for key(s): "
                      f"{sorted(torn)}")
    if len(responses) != n_requests:
        errors.append(f"answered {len(responses)}/{n_requests} requests")
    if statuses.get(200, 0) != n_requests:
        errors.append(f"non-200 responses: {statuses}")
    computed = after["computations"] - before["computations"]
    if computed > len(by_key):
        errors.append(
            f"single-flight violated: {computed} computations for "
            f"{len(by_key)} distinct keys")

    report = {
        "ok": not errors,
        "errors": errors,
        "elapsed_s": elapsed,
        "n_requests": n_requests,
        "n_distinct_keys": len(by_key),
        "n_duplicates_sent": n_dup,
        "statuses": statuses,
        "computations": computed,
        "sources": {
            s: after["requests"][s] - before["requests"].get(s, 0)
            for s in after["requests"]
        },
        "metrics": after,
        "healthz": health,
    }
    return report


# ----------------------------------------------------------------------
def spawn_server(jobs: int = 0, audit: Optional[str] = None,
                 extra_env: Optional[dict] = None,
                 timeout: float = 60.0):
    """Boot ``python -m repro serve`` on an ephemeral port.

    Returns ``(process, port)``; the caller owns shutdown.  The daemon
    announces its bound port on stdout — parsed here rather than
    racing a port-scan.
    """
    import os
    import re
    import subprocess

    cmd = [sys.executable, "-m", "repro", "serve",
           "--port", "0", "--jobs", str(jobs)]
    if audit:
        cmd += ["--audit", audit]
    env = dict(os.environ)
    env.update(extra_env or {})
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True,
                            env=env)
    deadline = time.monotonic() + timeout
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise RuntimeError(
                f"server died during startup (rc={proc.returncode})")
        m = re.search(r"listening on http://[^:]+:(\d+)", line)
        if m:
            return proc, int(m.group(1))
    proc.kill()
    raise RuntimeError("server did not announce a port in time")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.load",
        description="loopback load harness for the simulation service")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8477,
                        help="existing daemon to target (ignored "
                             "with --spawn)")
    parser.add_argument("--spawn", action="store_true",
                        help="boot a daemon subprocess, load it, "
                             "SIGTERM it, require exit 0")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes for --spawn")
    parser.add_argument("--requests", type=int, default=48)
    parser.add_argument("--dup-fraction", type=float, default=0.5)
    parser.add_argument("--threads", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--audit", default=None,
                        help="audit JSONL path for the spawned daemon")
    parser.add_argument("--metrics-out", default=None,
                        help="write the final report JSON here")
    args = parser.parse_args(argv)

    proc = None
    port = args.port
    if args.spawn:
        proc, port = spawn_server(jobs=args.jobs, audit=args.audit)
        print(f"spawned daemon pid={proc.pid} port={port}")
    try:
        report = run_load(port, host=args.host,
                          n_requests=args.requests,
                          dup_fraction=args.dup_fraction,
                          threads=args.threads, seed=args.seed)
    finally:
        if proc is not None:
            import signal

            proc.send_signal(signal.SIGTERM)
            try:
                rc = proc.wait(timeout=60)
            except Exception:
                proc.kill()
                rc = -9
            tail = proc.stdout.read() or ""
            if rc != 0:
                print(f"daemon exited rc={rc} (want 0 after SIGTERM)",
                      file=sys.stderr)
                print(tail, file=sys.stderr)

    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=True)
    summary = {k: report[k] for k in
               ("ok", "elapsed_s", "n_requests", "n_distinct_keys",
                "computations", "statuses", "sources")}
    print(json.dumps(summary, indent=2, sort_keys=True))
    if report["errors"]:
        for err in report["errors"]:
            print(f"INVARIANT: {err}", file=sys.stderr)
    drain_failed = proc is not None and proc.returncode != 0
    return 0 if report["ok"] and not drain_failed else 1


if __name__ == "__main__":
    sys.exit(main())
