"""Minimal JSON-over-HTTP/1.1 framing for the simulation service.

The daemon speaks just enough HTTP for programmatic clients —
request-line + headers + ``Content-Length`` body in, status-line +
headers + body out, optional keep-alive — implemented directly over
``asyncio`` streams.  Deliberately *not* a web framework: the stdlib
has no asyncio HTTP server, the service's API is four JSON routes, and
the framing layer staying ~150 lines keeps the dependency budget at
zero.  Anything the parser does not understand is a clean 4xx, never
an exception escaping into the connection handler.

Limits (all paranoia against misbehaving clients, not tunables):

* request line + headers together ≤ 32 KiB,
* bodies ≤ 8 MiB (a sweep of ~10k cells serializes far below this),
* only ``GET`` and ``POST`` (the API is submit/inspect only).
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, NamedTuple, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "handle_http_connection",
    "read_request",
    "read_response",
    "request_bytes",
    "response_bytes",
    "json_response",
]

MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

#: The subset of reason phrases the service actually emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A framing-level failure that maps onto one HTTP status."""

    def __init__(self, status: int, detail: str):
        super().__init__(detail)
        self.status = status
        self.detail = detail


class Request(NamedTuple):
    """One parsed request."""

    method: str
    path: str
    query: Dict[str, list]
    headers: Dict[str, str]
    body: bytes
    keep_alive: bool

    def json(self) -> dict:
        """Decode the body as a JSON object (400 on anything else)."""
        if not self.body:
            raise HttpError(400, "request body required")
        try:
            doc = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as e:
            raise HttpError(400, f"malformed JSON body: {e}") from None
        if not isinstance(doc, dict):
            raise HttpError(400, "JSON body must be an object")
        return doc


async def read_request(reader: asyncio.StreamReader
                       ) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on a clean EOF.

    Raises :class:`HttpError` on malformed or over-limit input — the
    connection handler turns that into an error response and closes.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as e:
        if not e.partial.strip():
            return None  # clean close between requests
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, proto = parts
    if method not in ("GET", "POST"):
        raise HttpError(405, f"method {method} not allowed")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    query = parse_qs(split.query) if split.query else {}

    length = 0
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(413, f"body of {length} bytes refused")
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked bodies not supported")
    body = await reader.readexactly(length) if length else b""

    # HTTP/1.1 defaults to keep-alive; 1.0 to close.
    connection = headers.get("connection", "").lower()
    keep_alive = (proto != "HTTP/1.0" or connection == "keep-alive")
    if connection == "close":
        keep_alive = False
    return Request(method, split.path, query, headers, body, keep_alive)


def request_bytes(method: str, path: str,
                  doc: Optional[dict] = None,
                  host: str = "shard") -> bytes:
    """Serialize one upstream request (the router's client side).

    The JSON encoding matches :class:`~repro.serve.client.ServiceClient`
    exactly (``sort_keys``, ``repr`` floats), so a forwarded cell body
    is byte-identical to what a direct client would have sent.
    """
    body = (json.dumps(doc, sort_keys=True).encode("utf-8")
            if doc is not None else b"")
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: keep-alive",
    ]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def read_response(reader: asyncio.StreamReader) -> Tuple[int, dict]:
    """Parse one HTTP response off the stream (the router's upstream
    side): ``(status, decoded JSON payload)``.

    Raises :class:`HttpError` 502 on anything that is not a
    well-formed JSON-over-HTTP response — the router treats that the
    same as a transport failure and fails over.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
        raise HttpError(502, "truncated upstream response") from None
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise HttpError(502,
                        f"malformed upstream status line: {lines[0]!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise HttpError(502,
                        f"malformed upstream status: {parts[1]!r}") from None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HttpError(502, "malformed upstream Content-Length") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpError(502, f"upstream body of {length} bytes refused")
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        raise HttpError(502, "truncated upstream body") from None
    try:
        payload = json.loads(body.decode("utf-8")) if body else {}
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise HttpError(502, f"undecodable upstream body "
                             f"({len(body)} bytes)") from None
    if not isinstance(payload, dict):
        payload = {"value": payload}
    return status, payload


async def handle_http_connection(reader, writer, respond,
                                 conn_tasks: set) -> None:
    """One connection's serve loop, shared by the daemon and router.

    ``respond`` is an ``async (Request) -> bytes`` callable producing
    wire bytes; everything else — keep-alive, framing-error responses,
    clean handling of clients that vanish, and the drain-time
    cancellation contract — is identical for every server in this
    package, so it lives here once.
    """
    task = asyncio.current_task()
    conn_tasks.add(task)
    try:
        while True:
            try:
                req = await read_request(reader)
            except HttpError as e:
                _, wire = json_response(e.status, {"error": e.detail},
                                        keep_alive=False)
                writer.write(wire)
                await writer.drain()
                break
            if req is None:
                break
            wire = await respond(req)
            writer.write(wire)
            await writer.drain()
            if not req.keep_alive:
                break
    except (ConnectionError, asyncio.IncompleteReadError):
        pass  # client went away; nothing to salvage
    except asyncio.CancelledError:
        # Drain closes idle keep-alive connections by cancelling
        # their handlers; finishing normally (instead of staying
        # "cancelled") sidesteps a noisy 3.11 asyncio.streams
        # done-callback and lets the writer close cleanly below.
        pass
    finally:
        conn_tasks.discard(task)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def response_bytes(status: int, body: bytes,
                   content_type: str = "application/json",
                   extra_headers: Optional[Dict[str, str]] = None,
                   keep_alive: bool = True) -> bytes:
    """Serialize one response (status line, headers, body)."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_response(status: int, payload: dict,
                  extra_headers: Optional[Dict[str, str]] = None,
                  keep_alive: bool = True) -> Tuple[int, bytes]:
    """(status, wire bytes) of a JSON payload.

    Floats travel via ``repr`` (the ``json`` module default), the same
    encoding the result cache uses — so a summary served over HTTP
    round-trips bit-exactly, matching a direct ``run_version`` call.
    """
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return status, response_bytes(status, body,
                                  extra_headers=extra_headers,
                                  keep_alive=keep_alive)
