"""The cluster router (``repro cluster``): one front door, N shards.

A single ``repro serve`` daemon is a single point of failure and a
single coalescing domain.  The router turns N of them into one
cluster while *keeping* the daemon's exactly-once guarantee:

* **Placement = identity.**  Every ``POST /v1/cell`` body is
  normalized with the daemon's own :func:`normalize_cell`, keyed with
  :func:`repro.bench.cache.placement_key` (the result cache's content
  hash), and placed on a consistent-hash ring
  (:class:`~repro.serve.ring.HashRing`) keyed by shard *name*.  All
  duplicates of a cell land on one shard, whose single-flight table
  and result cache make the computation exactly-once cluster-wide.
* **Failover is idempotent by construction.**  If the home shard dies
  mid-request (connection refused/reset, truncated response) or
  refuses while draining, the router retries a stale pooled
  connection once, then walks the ring successors
  (``preference(key)[1:]``, bounded by ``max_failover``).  A replayed
  request can only recompute the same content-addressed result, so
  retrying is always safe.
* **Membership is health-probe-driven.**  A background prober GETs
  every member's ``/healthz``; a shard that fails ``probe_fails_down``
  *consecutive* probes (or a single forward — ground truth) leaves
  the ring, a shard that answers ``ok`` (re)joins.  The hysteresis
  keeps one slow probe from evicting a busy-but-healthy shard, whose
  failed-over keys would be computed twice.
  Join/leave *rebalances minimally*: the ring moves only the
  affected shard's keys (pinned by the ring property suite).
* **One rollup view.**  ``/healthz`` reports per-shard liveness;
  ``/metrics`` aggregates shard snapshots plus the router's own
  routed/retried/failed-over counters and end-to-end p50/p99.

The router deliberately does **not** spill on backpressure: a shard's
429 is relayed to the client verbatim.  Spilling a busy shard's key
onto a successor would split the key's coalescing domain and break
the exactly-once property the placement scheme exists to provide.

Shard *names* (stable) rather than endpoints (ephemeral ports) key
the ring, so a shard restarted by the supervisor keeps its placements.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bench.cache import placement_key
from repro.serve.http import (
    HttpError,
    Request,
    read_response,
    request_bytes,
)
from repro.serve.metrics import RouterMetrics
from repro.serve.ring import DEFAULT_VNODES, HashRing
from repro.serve.service import (
    BackgroundService,
    JsonDaemonBase,
    cell_to_doc,
    install_signal_handlers,
    normalize_cell,
    sweep_cells_from_doc,
)
from repro.sim.cost import COST_MODEL_VERSION

__all__ = [
    "BackgroundRouter",
    "DEFAULT_ROUTER_PORT",
    "Router",
    "RouterConfig",
    "UpstreamError",
    "parse_members",
    "router_main",
]

#: Default router port — one above the daemon's 8477 so a laptop can
#: run both side by side.
DEFAULT_ROUTER_PORT = 8478


class UpstreamError(RuntimeError):
    """A shard could not be reached or answered garbage."""


def parse_members(specs) -> Dict[str, Tuple[str, int]]:
    """``["host:port", ...]`` or ``{name: (host, port)}`` -> members.

    List entries are named by their endpoint string — good enough for
    static membership; the supervisor passes stable ``shard-N`` names
    instead so placements survive restarts.
    """
    if isinstance(specs, dict):
        return {name: (host, int(port))
                for name, (host, port) in specs.items()}
    members: Dict[str, Tuple[str, int]] = {}
    for spec in specs:
        host, sep, port = str(spec).rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(f"member must be host:port, got {spec!r}")
        members[f"{host}:{port}"] = (host or "127.0.0.1", int(port))
    return members


@dataclass
class RouterConfig:
    """Everything ``repro cluster`` can be told from the command line."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_ROUTER_PORT   # 0 = ephemeral (announced)
    members: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    vnodes: int = DEFAULT_VNODES
    probe_interval: float = 1.0       # seconds between health sweeps
    probe_timeout: float = 2.0
    probe_fails_down: int = 3         # consecutive misses before eviction
    max_failover: int = 2             # ring successors tried after home
    upstream_timeout: Optional[float] = 600.0  # per-forward budget
    per_shard_inflight: int = 32      # concurrent forwards per shard
    pool_size: int = 4                # idle keep-alive conns per shard
    max_sweep_cells: int = 1024
    audit_path: Optional[str] = None


class _Shard:
    """Router-side state for one member."""

    def __init__(self, name: str, host: str, port: int,
                 inflight: int, pool_size: int):
        self.name = name
        self.host = host
        self.port = port
        self.up = True            # optimistic; probes correct quickly
        self.probe_misses = 0     # consecutive failed probes
        self.sem = asyncio.Semaphore(inflight)
        self.pool_size = pool_size
        self.pool: List[tuple] = []   # idle (reader, writer) pairs

    def take_conn(self):
        return self.pool.pop() if self.pool else None

    def give_conn(self, conn) -> None:
        if len(self.pool) < self.pool_size:
            self.pool.append(conn)
        else:
            _close_conn(conn)

    def drop_pool(self) -> None:
        while self.pool:
            _close_conn(self.pool.pop())


def _close_conn(conn) -> None:
    _, writer = conn
    try:
        writer.close()
    except Exception:
        pass


class Router(JsonDaemonBase):
    """The routing daemon; protocol-compatible with the service for
    :class:`BackgroundService`-style embedding (``start`` / ``port`` /
    ``serve_until_stopped`` / ``drain``)."""

    def __init__(self, config: Optional[RouterConfig] = None):
        self.config = config or RouterConfig()
        self.metrics = RouterMetrics()
        self.ring = HashRing(self.config.vnodes)
        self._init_daemon()
        self._shards: Dict[str, _Shard] = {}
        self._prober: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        for name, (host, port) in self.config.members.items():
            self._add_shard(name, host, port)

    # -- membership ----------------------------------------------------
    def _add_shard(self, name: str, host: str, port: int) -> None:
        self._shards[name] = _Shard(
            name, host, port,
            inflight=self.config.per_shard_inflight,
            pool_size=self.config.pool_size)
        self.ring.add(name)

    def set_members(self, members: Dict[str, Tuple[str, int]]) -> None:
        """Replace the membership table (supervisor join/leave path).

        A shard whose endpoint changed (restart on a new port) keeps
        its name — and therefore its ring placements — but loses its
        pooled connections and rejoins optimistically for the prober
        to confirm.
        """
        for name in list(self._shards):
            if name not in members:
                shard = self._shards.pop(name)
                shard.drop_pool()
                self.ring.remove(name)
        for name, (host, port) in members.items():
            shard = self._shards.get(name)
            if shard is None:
                self._add_shard(name, host, port)
            elif (shard.host, shard.port) != (host, port):
                shard.drop_pool()
                shard.host, shard.port = host, port
                self._mark_up(shard)

    def update_members_threadsafe(self, members) -> None:
        """Membership update from another thread (the supervisor)."""
        if self._loop is None or self._loop.is_closed():
            return
        self._loop.call_soon_threadsafe(
            self.set_members, parse_members(members))

    def _mark_down(self, shard: _Shard) -> None:
        shard.drop_pool()
        if shard.up:
            shard.up = False
            self.ring.remove(shard.name)
            self.metrics.marked_down += 1

    def _mark_up(self, shard: _Shard) -> None:
        shard.probe_misses = 0
        if not shard.up:
            shard.up = True
            self.ring.add(shard.name)
            self.metrics.marked_up += 1

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._prober = asyncio.create_task(self._probe_loop())
        await self._start_server()

    async def drain(self) -> None:
        """Graceful shutdown: answer in-flight routes, refuse the rest."""
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        while self._active_requests:
            await asyncio.sleep(0.01)
        if self._prober is not None:
            self._prober.cancel()
            try:
                await self._prober
            except asyncio.CancelledError:
                pass
        for shard in self._shards.values():
            shard.drop_pool()
        if self._audit is not None:
            self._audit.close()
        await self._close_server()
        self._stopped.set()

    # -- upstream transport --------------------------------------------
    async def _forward_once(self, shard: _Shard, wire: bytes,
                            conn=None) -> Tuple[int, dict, tuple]:
        if conn is None:
            conn = await asyncio.open_connection(shard.host, shard.port)
        reader, writer = conn
        writer.write(wire)
        await writer.drain()
        status, payload = await read_response(reader)
        return status, payload, conn

    async def _forward(self, shard: _Shard, wire: bytes
                       ) -> Tuple[int, dict]:
        """One forward with the bounded-retry contract.

        A failure on a *pooled* (possibly stale keep-alive) connection
        is retried exactly once on a fresh connection; a failure on a
        fresh connection means the shard is genuinely unreachable and
        surfaces as :class:`UpstreamError` for the failover path.
        """
        timeout = self.config.upstream_timeout
        pooled = shard.take_conn()
        for conn in (pooled, None):
            fresh = conn is None
            try:
                status, payload, conn = await asyncio.wait_for(
                    self._forward_once(shard, wire, conn), timeout)
            except (OSError, HttpError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError) as e:
                if conn is not None:
                    _close_conn(conn)
                if fresh:
                    raise UpstreamError(
                        f"{shard.name} ({shard.host}:{shard.port}): "
                        f"{type(e).__name__}: {e}") from e
                self.metrics.retries += 1
                continue
            shard.give_conn(conn)
            return status, payload
        raise UpstreamError(f"{shard.name}: unreachable")  # pragma: no cover

    # -- routing -------------------------------------------------------
    async def route_cell(self, doc: dict) -> tuple:
        """-> (status, payload, source, key) for one cell.

        Does *not* count itself into ``metrics.requests`` — the
        caller does (a sweep is one request, not ``n_cells``) — but
        does count forwards, retries, failovers, and relayed sources.
        """
        try:
            cell = normalize_cell(doc)
        except HttpError as e:
            return e.status, {"error": e.detail}, "invalid", None
        config = cell.config()
        key = placement_key(config)
        if self._draining:
            return 503, {"error": "draining", "key": key}, \
                "rejected_draining", key
        # Forward the *normalized* config so the shard derives the
        # exact same cache key the ring placement used.
        fwd = {k: v for k, v in config.items() if v is not None}
        wire = request_bytes("POST", "/v1/cell", fwd)

        candidates = self.ring.preference(
            key, limit=1 + max(0, self.config.max_failover))
        tried: List[str] = []
        for i, name in enumerate(candidates):
            shard = self._shards.get(name)
            if shard is None or not shard.up:
                continue  # membership changed under us
            if i > 0:
                self.metrics.failovers += 1
            tried.append(name)
            t0 = time.perf_counter()
            async with shard.sem:
                try:
                    status, payload = await self._forward(shard, wire)
                except UpstreamError:
                    self._mark_down(shard)
                    continue
            self.metrics.count_forward(name,
                                       time.perf_counter() - t0)
            if status == 503 and payload.get("error") == "draining":
                # Graceful shard drain: it refuses new work but is
                # still alive.  Treat as a leave — the prober will
                # re-add it if it comes back.
                self._mark_down(shard)
                continue
            payload.setdefault("key", key)
            payload["shard"] = name
            self.metrics.count_relayed(payload.get("source"))
            return status, payload, "routed", key
        return 503, {"error": "no shard available", "key": key,
                     "tried": tried}, "no_shard", key

    async def _route(self, req: Request) -> tuple:
        """-> (status, payload, source, key, n_cells)."""
        if req.path == "/healthz":
            return 200, self._healthz_payload(), None, None, 0
        if req.path == "/metrics":
            return 200, await self.metrics_payload(), None, None, 0
        if req.path == "/v1/cell":
            if req.method != "POST":
                raise HttpError(405, "POST required")
            t0 = time.perf_counter()
            status, payload, source, key = await self.route_cell(
                req.json())
            self.metrics.count_request(source,
                                       time.perf_counter() - t0)
            return status, payload, source, key, 1
        if req.path == "/v1/sweep":
            if req.method != "POST":
                raise HttpError(405, "POST required")
            return await self._route_sweep(req.json())
        raise HttpError(404, f"no route for {req.path}")

    async def _route_sweep(self, doc: dict) -> tuple:
        t0 = time.perf_counter()
        cells = sweep_cells_from_doc(doc, self.config.max_sweep_cells)
        # Each cell routes to *its own* home shard concurrently; the
        # per-shard in-flight semaphore keeps any single shard's
        # backlog from tripping 429 under a wide sweep.
        results = await asyncio.gather(*[
            self.route_cell(cell_to_doc(c)) for c in cells
        ])
        entries = []
        worst = 200
        for (status, payload, _source, _key), cell in zip(results,
                                                          cells):
            entries.append({"cell": cell.label(), "status": status,
                            **payload})
            worst = max(worst, status)
        self.metrics.count_request("sweep", time.perf_counter() - t0)
        return 200, {"n_cells": len(entries),
                     "worst_status": worst,
                     "cells": entries}, "sweep", None, len(entries)

    # -- health probing ------------------------------------------------
    async def _probe_loop(self) -> None:
        wire = request_bytes("GET", "/healthz")
        while True:
            for shard in list(self._shards.values()):
                try:
                    status, payload = await asyncio.wait_for(
                        self._probe_once(shard, wire),
                        self.config.probe_timeout)
                    ok = status == 200 and payload.get("status") == "ok"
                except (OSError, HttpError, asyncio.TimeoutError,
                        asyncio.IncompleteReadError):
                    ok = False
                self._note_probe(shard, ok)
            await asyncio.sleep(self.config.probe_interval)

    def _note_probe(self, shard: _Shard, ok: bool) -> None:
        """Apply one probe verdict to membership.

        Hysteresis: one slow ``/healthz`` (a busy shard under CPU
        contention) must not evict a member that is actively serving —
        a spurious eviction fails live keys over and double-computes
        them.  Only ``probe_fails_down`` *consecutive* misses (or a
        forward error, which is ground truth) take a shard out of the
        ring; a single ``ok`` brings it straight back.
        """
        if ok:
            self._mark_up(shard)
            return
        shard.probe_misses += 1
        if (not shard.up
                or shard.probe_misses >= self.config.probe_fails_down):
            self._mark_down(shard)

    async def _probe_once(self, shard: _Shard, wire: bytes) -> tuple:
        conn = await asyncio.open_connection(shard.host, shard.port)
        try:
            status, payload, conn = await self._forward_once(
                shard, wire, conn)
            return status, payload
        finally:
            _close_conn(conn)

    # -- observability -------------------------------------------------
    def _healthz_payload(self) -> dict:
        up = [s.name for s in self._shards.values() if s.up]
        down = [s.name for s in self._shards.values() if not s.up]
        status = "draining" if self._draining else (
            "ok" if up else "degraded")
        return {
            "status": status,
            "role": "router",
            "uptime_s": time.time() - self.metrics.started_at,
            "shards_up": sorted(up),
            "shards_down": sorted(down),
            "ring_nodes": len(self.ring),
        }

    async def shard_snapshots(self) -> Dict[str, dict]:
        """Fetch every live shard's ``/metrics`` (errors per shard)."""
        wire = request_bytes("GET", "/metrics")

        async def one(shard: _Shard):
            try:
                status, payload = await asyncio.wait_for(
                    self._probe_once(shard, wire),
                    self.config.probe_timeout)
                if status != 200:
                    return {"up": shard.up,
                            "error": f"HTTP {status}"}
                return {"up": shard.up, "metrics": payload}
            except (OSError, HttpError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError) as e:
                return {"up": shard.up,
                        "error": f"{type(e).__name__}: {e}"}

        shards = list(self._shards.values())
        snaps = await asyncio.gather(*[one(s) for s in shards])
        return {s.name: snap for s, snap in zip(shards, snaps)}

    async def metrics_payload(self) -> dict:
        """The aggregated cluster view (fetches shard metrics inline).

        Top level mirrors the daemon's ``/metrics`` vocabulary where a
        rollup makes sense (``computations`` is the cluster-wide sum,
        which the exactly-once tests pin), with the full per-shard
        snapshots and the router's own counters nested beside it.
        """
        shards = await self.shard_snapshots()
        cluster = {
            "computations": 0,
            "requests_total": 0,
            "worker_restarts": 0,
            "shards_reporting": 0,
        }
        for snap in shards.values():
            m = snap.get("metrics")
            if not m:
                continue
            cluster["shards_reporting"] += 1
            cluster["computations"] += m.get("computations", 0)
            cluster["requests_total"] += m.get("requests_total", 0)
            cluster["worker_restarts"] += m.get("worker_restarts", 0)
        snap = self.metrics.snapshot()
        snap["computations"] = cluster["computations"]
        snap["router"] = {
            "members": {
                name: {"host": s.host, "port": s.port, "up": s.up}
                for name, s in self._shards.items()
            },
            "ring_nodes": len(self.ring),
            "vnodes": self.config.vnodes,
            "max_failover": self.config.max_failover,
        }
        snap["shards"] = shards
        snap["cluster"] = cluster
        snap["draining"] = self._draining
        snap["cost_model_version"] = COST_MODEL_VERSION
        return snap


class BackgroundRouter(BackgroundService):
    """Run a :class:`Router` on a thread-owned event loop (tests,
    the load harness's cluster mode)."""

    daemon_class = Router

    def __init__(self, config: Optional[RouterConfig] = None):
        super().__init__(config or RouterConfig(port=0))

    @property
    def router(self) -> Optional[Router]:
        return self.service


async def router_main(config: RouterConfig, announce=None,
                      on_ready=None) -> int:
    """Run the router until drained; returns the process exit code.

    ``on_ready(router)`` fires after the port is bound — ``repro
    cluster --shards N`` uses it to wire the supervisor's membership
    pushes into the live router.
    """
    router = Router(config)
    await router.start()
    install_signal_handlers(router, asyncio.get_running_loop())
    if on_ready is not None:
        on_ready(router)
    if announce is not None:
        announce(f"repro cluster: routing on "
                 f"http://{config.host}:{router.port} "
                 f"({len(config.members)} shards, "
                 f"{config.vnodes} vnodes, "
                 f"pid={__import__('os').getpid()})")
    await router.serve_until_stopped()
    return 0
