"""The persistent simulation service (``repro serve``).

One asyncio daemon turns the batch orchestration stack into a
long-lived, many-client system: requests arrive as JSON over HTTP,
results leave bit-identical to what a direct
:func:`repro.analysis.experiment.run_version` call produces, and the
expensive middles — compiled prep, finished summaries, even the worker
processes themselves — are shared across every request that can share
them.

Request lifecycle (``POST /v1/cell``)::

    normalize -> cache probe -> single-flight probe -> admission -> queue
        |            |               |                    |
        400       200 "cache"   200 "coalesced"      429 if >= backlog
                                                          |
                            dispatcher batch -> prep prebuild -> pool
                                                          |
                                      cache.put -> 200 "computed" (all
                                      coalesced waiters resolve together)

* **Single-flight**: identical in-flight cells (same
  :func:`repro.bench.cache.cache_key` of the normalized config — the
  exact key the result cache uses) share one computation.  A duplicate
  of a queued-or-running cell never consumes pool or queue capacity.
* **Backpressure**: admission is bounded by ``backlog`` *distinct*
  pending computations; beyond it, single-cell submits fail fast with
  429 plus a ``Retry-After`` estimate.  Sweeps opt into waiting
  (``wait=True`` internally) instead of failing — a sweep is one
  client prepared to sit on the connection.
* **Cache-aware coalescing**: the dispatcher drains the queue in small
  batches and prebuilds each distinct prep artifact once (in the
  parent, via :func:`~repro.analysis.experiment.prebuild_prep`) before
  fanning cells to the warm pool — workers load census/DAG/plans from
  the prep store instead of rebuilding them per cell.
* **Drain contract** (SIGTERM/SIGINT): stop admitting (503
  ``draining``), finish everything already admitted, flush and publish
  the audit log, close the pool, exit 0.

Observability: ``GET /healthz`` (liveness + drain state),
``GET /metrics`` (queue depth, hit rates, latency percentiles, worker
restarts — :class:`~repro.serve.metrics.ServiceMetrics`), and a
per-request JSONL audit stream written through
:class:`~repro.trace.sink.JSONLSink` (crash-safe ``.part`` + atomic
publish on drain).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, NamedTuple, Optional

from repro.bench.cache import ResultCache
from repro.bench.runner import (
    Cell,
    DEFAULT_BLOCK_COUNT,
    REGENT_BLOCK_COUNT,
    WorkerFailure,
    expand_grid,
)
from repro.serve.http import (
    HttpError,
    Request,
    handle_http_connection,
    json_response,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.pool import WarmPool, serve_worker
from repro.sim.cost import COST_MODEL_VERSION
from repro.sim.engine import RunResultSummary
from repro.trace.events import EVENT_KINDS
from repro.trace.sink import JSONLSink

__all__ = [
    "AuditEvent",
    "BackgroundService",
    "ServeConfig",
    "SimulationService",
    "cell_to_doc",
    "normalize_cell",
    "sweep_cells_from_doc",
]

_MACHINES = ("broadwell", "epyc")
_SOLVERS = ("lanczos", "lobpcg")
_VERSIONS = ("libcsr", "libcsb", "deepsparse", "hpx", "regent")

_CELL_FIELDS = {"machine", "matrix", "solver", "version", "block_count",
                "iterations", "width", "first_touch", "seed"}


class AuditEvent(NamedTuple):
    """One line of the service's JSONL audit log.

    Reuses the trace-event serialization contract
    (:func:`repro.trace.events.event_to_dict`), so
    :class:`~repro.trace.sink.JSONLSink` streams it unchanged and
    :func:`repro.trace.sink.read_jsonl` loads audit files back.
    ``wall`` is wall-clock epoch seconds — the only timestamp that
    makes sense for a daemon — unlike simulation events, whose times
    are simulated seconds.
    """

    kind = "audit"

    wall: float
    method: str
    path: str
    key: Optional[str]
    source: str
    status: int
    latency_s: float
    error: Optional[str] = None
    cells: int = 1


# Let read_jsonl() round-trip audit files like any other event stream.
EVENT_KINDS.setdefault("audit", AuditEvent)


def _require_int(doc: dict, name: str, default, minimum: int,
                 maximum: int = 1 << 31):
    value = doc.get(name, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise HttpError(400, f"{name!r} must be an integer")
    if not minimum <= value <= maximum:
        raise HttpError(400, f"{name!r} out of range [{minimum}, "
                             f"{maximum}]: {value}")
    return value


def normalize_cell(doc: dict) -> Cell:
    """Validate a request body into a canonical :class:`Cell`.

    Every reachable failure is an :class:`HttpError` 400 with a
    message naming the offending field — a typo must never reach a
    worker process as an exception.
    """
    from repro.matrices.suite import SUITE

    unknown = set(doc) - _CELL_FIELDS
    if unknown:
        raise HttpError(400, f"unknown cell field(s): "
                             f"{', '.join(sorted(unknown))}")
    matrix = doc.get("matrix")
    if not isinstance(matrix, str) or matrix not in SUITE:
        raise HttpError(400, f"'matrix' must be one of the Table 1 "
                             f"suite, got {matrix!r}")
    machine = doc.get("machine", "broadwell")
    if machine not in _MACHINES:
        raise HttpError(400, f"'machine' must be one of {_MACHINES}, "
                             f"got {machine!r}")
    solver = doc.get("solver", "lanczos")
    if solver not in _SOLVERS:
        raise HttpError(400, f"'solver' must be one of {_SOLVERS}, "
                             f"got {solver!r}")
    version = doc.get("version", "deepsparse")
    if version not in _VERSIONS:
        raise HttpError(400, f"'version' must be one of {_VERSIONS}, "
                             f"got {version!r}")
    block_count = _require_int(doc, "block_count", None, 1, 1 << 20)
    if block_count is None:
        table = (REGENT_BLOCK_COUNT if version == "regent"
                 else DEFAULT_BLOCK_COUNT)
        block_count = table.get(machine, 64)
    iterations = _require_int(doc, "iterations", 2, 1, 10000)
    width = _require_int(doc, "width", None, 1, 4096)
    seed = _require_int(doc, "seed", 0, 0)
    first_touch = doc.get("first_touch", True)
    if not isinstance(first_touch, bool):
        raise HttpError(400, "'first_touch' must be a boolean")
    return Cell(machine=machine, matrix=matrix, solver=solver,
                version=version, block_count=block_count,
                iterations=iterations, width=width,
                first_touch=first_touch, seed=seed)


def sweep_cells_from_doc(doc: dict, max_cells: int):
    """Validate a ``/v1/sweep`` body into a list of :class:`Cell`.

    Shared by the daemon and the cluster router so both endpoints
    accept the exact same grid vocabulary and enforce the same size
    limit.  Every reachable failure is an :class:`HttpError` 400.
    """
    grid_fields = {"machines", "matrices", "solvers", "versions",
                   "block_counts", "iterations", "width",
                   "first_touch", "seed"}
    unknown = set(doc) - grid_fields
    if unknown:
        raise HttpError(400, f"unknown sweep field(s): "
                             f"{', '.join(sorted(unknown))}")
    if not doc.get("matrices"):
        raise HttpError(400, "'matrices' (non-empty list) required")
    try:
        cells = expand_grid(
            machines=doc.get("machines", ("broadwell",)),
            matrices=doc["matrices"],
            solvers=doc.get("solvers", ("lanczos",)),
            versions=doc.get("versions",
                             ("libcsr", "libcsb", "deepsparse",
                              "hpx", "regent")),
            block_counts=doc.get("block_counts"),
            iterations=int(doc.get("iterations", 2)),
            width=doc.get("width"),
            first_touch=bool(doc.get("first_touch", True)),
            seed=int(doc.get("seed", 0)),
        )
    except (TypeError, ValueError) as e:
        raise HttpError(400, f"bad sweep grid: {e}") from None
    if len(cells) > max_cells:
        raise HttpError(400, f"sweep of {len(cells)} cells exceeds "
                             f"the {max_cells}-cell limit")
    return cells


def cell_to_doc(cell: Cell) -> dict:
    """One grid cell as a ``/v1/cell`` request body."""
    return {
        "machine": cell.machine, "matrix": cell.matrix,
        "solver": cell.solver, "version": cell.version,
        "block_count": cell.block_count,
        "iterations": cell.iterations,
        **({"width": cell.width} if cell.width is not None else {}),
        "first_touch": cell.first_touch, "seed": cell.seed,
    }


@dataclass
class ServeConfig:
    """Everything ``repro serve`` can be told from the command line."""

    host: str = "127.0.0.1"
    port: int = 8477          # 0 = ephemeral (the bound port is reported)
    jobs: int = 0             # 0 = inline worker threads (no fork)
    backlog: int = 64         # max distinct pending computations
    batch_max: int = 8        # dispatcher batch size (prep coalescing)
    timeout: Optional[float] = None   # per-cell pool budget, seconds
    attempts: int = 2
    backoff: float = 0.25
    audit_path: Optional[str] = None
    cache: Optional[ResultCache] = None   # default: process-wide cache
    max_sweep_cells: int = 1024
    worker: Callable[[dict], tuple] = field(default=serve_worker,
                                            repr=False)


class _Pending(NamedTuple):
    """One admitted computation travelling queue -> pool."""

    key: str
    config: dict
    future: asyncio.Future


class JsonDaemonBase:
    """The HTTP-daemon half shared by the service and cluster router.

    Owns everything that is identical whether the process *computes*
    cells or *routes* them: the asyncio server lifecycle, per-
    connection handling, request accounting (`_respond` wraps the
    subclass's ``_route``), the Retry-After header contract, and the
    JSONL audit stream.  Subclasses provide ``config`` (``host`` /
    ``port`` / ``audit_path`` attributes), ``metrics`` (anything with
    ``count_request``), and an async ``_route(req)`` returning
    ``(status, payload, source, key, n_cells)``.
    """

    config = None
    metrics = None

    def _init_daemon(self) -> None:
        self.port: Optional[int] = None      # resolved after start()
        self._active_requests = 0
        self._draining = False
        self._stopped = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set = set()
        self._audit: Optional[JSONLSink] = None
        if self.config.audit_path:
            self._audit = JSONLSink(self.config.audit_path)

    async def _start_server(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_stopped(self) -> None:
        await self._stopped.wait()

    async def _close_server(self) -> None:
        """Stop accepting, then reap idle keep-alive connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)

    # -- HTTP layer ----------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        await handle_http_connection(reader, writer, self._respond,
                                     self._conn_tasks)

    async def _respond(self, req: Request) -> bytes:
        t0 = time.perf_counter()
        self._active_requests += 1
        headers = None
        key = None
        cells = 1
        try:
            try:
                status, payload, source, key, cells = \
                    await self._route(req)
            except HttpError as e:
                status, payload, source = e.status, \
                    {"error": e.detail}, "invalid"
                self.metrics.count_request(
                    source, time.perf_counter() - t0)
            except Exception as e:
                status, payload, source = 500, \
                    {"error": f"{type(e).__name__}: {e}"}, "error"
                self.metrics.count_request(
                    source, time.perf_counter() - t0)
            if status == 429 and "retry_after_s" in payload:
                headers = {"Retry-After":
                           str(max(1, int(payload["retry_after_s"])))}
            if source is not None and not req.path.startswith(
                    ("/healthz", "/metrics")):
                self._audit_emit(req, key, source, status,
                                 time.perf_counter() - t0,
                                 payload.get("error"), cells)
            _, wire = json_response(status, payload,
                                    extra_headers=headers,
                                    keep_alive=req.keep_alive)
            return wire
        finally:
            self._active_requests -= 1

    def _audit_emit(self, req: Request, key, source, status, latency,
                    error, cells) -> None:
        if self._audit is None:
            return
        try:
            self._audit.emit(AuditEvent(
                wall=time.time(), method=req.method, path=req.path,
                key=key, source=source, status=status,
                latency_s=latency,
                error=str(error) if error else None, cells=cells))
        except Exception:
            pass  # the audit stream must never take a request down


class SimulationService(JsonDaemonBase):
    """The daemon: routes, queue, single-flight table, dispatcher."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.cache = self.config.cache
        if self.cache is None:
            from repro.bench.cache import default_cache

            self.cache = default_cache()
        self.metrics = ServiceMetrics()
        self.pool = WarmPool(jobs=self.config.jobs,
                             timeout=self.config.timeout,
                             attempts=self.config.attempts,
                             backoff=self.config.backoff,
                             worker=self.config.worker,
                             metrics=self.metrics)
        self._init_daemon()
        self._inflight: Dict[str, asyncio.Future] = {}
        self._queue: asyncio.Queue = asyncio.Queue()
        self._space = asyncio.Condition()
        self._pending_compute = 0
        self._dispatcher: Optional[asyncio.Task] = None
        self._compute_tasks: set = set()
        self._sem = asyncio.Semaphore(max(1, self.config.jobs))
        self._prebuilt: set = set()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self.pool.start()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        await self._start_server()

    async def drain(self) -> None:
        """Graceful shutdown: finish admitted work, refuse the rest.

        Idempotent; safe to call from a signal handler via
        ``asyncio.create_task``.
        """
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        async with self._space:
            self._space.notify_all()   # wake queued sweep admissions
        # Everything admitted before the flag flipped must finish —
        # including cells still sitting in the dispatcher queue.
        while self._inflight:
            await asyncio.gather(*list(self._inflight.values()),
                                 return_exceptions=True)
        # Let responders holding freshly-resolved futures write their
        # responses and audit lines before the sink closes.
        while self._active_requests:
            await asyncio.sleep(0.01)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        if self._compute_tasks:
            await asyncio.gather(*list(self._compute_tasks),
                                 return_exceptions=True)
        self.pool.close()
        if self._audit is not None:
            self._audit.close()
        await self._close_server()
        self._stopped.set()

    # -- the single-flight submit path ---------------------------------
    async def submit_cell(self, doc: dict, wait: bool = False) -> tuple:
        """(status, payload, source) for one cell request.

        ``wait=False`` (single-cell API) fails fast with 429 when the
        backlog is full; ``wait=True`` (sweep cells) blocks for space.
        Counts itself into the metrics exactly once, whatever path the
        request takes.
        """
        t0 = time.perf_counter()
        status, payload, source = await self._submit_inner(doc, wait)
        self.metrics.count_request(source, time.perf_counter() - t0)
        return status, payload, source

    async def _submit_inner(self, doc: dict, wait: bool) -> tuple:
        try:
            cell = normalize_cell(doc)
        except HttpError as e:
            return e.status, {"error": e.detail}, "invalid"
        config = cell.config()
        key = self.cache.key(config)
        if self._draining:
            return 503, {"error": "draining", "key": key}, \
                "rejected_draining"

        hit = self.cache.get(config)
        if hit is not None:
            return 200, self._ok_payload(key, "cache", hit), "cache"

        fut = self._inflight.get(key)
        if fut is not None:
            return await self._await_result(key, fut, "coalesced")

        admitted = await self._admit(wait)
        if not admitted:
            retry_after = self._retry_after_estimate()
            return 429, {"error": "queue full", "key": key,
                         "pending": self._pending_compute,
                         "retry_after_s": retry_after}, "rejected_busy"
        if self._draining:   # flag may have flipped while waiting
            await self._release_slot()
            return 503, {"error": "draining", "key": key}, \
                "rejected_draining"

        fut = asyncio.get_running_loop().create_future()
        # Mark the exception retrieved even if every waiter got
        # cancelled, so a failed cell never logs "exception was never
        # retrieved" at GC time.
        fut.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None)
        self._inflight[key] = fut
        self._queue.put_nowait(_Pending(key, config, fut))
        self.metrics.note_queue_depth(self._pending_compute)
        return await self._await_result(key, fut, "computed")

    async def _await_result(self, key: str, fut: asyncio.Future,
                            source: str) -> tuple:
        try:
            summary = await fut
        except WorkerFailure as e:
            return 500, {"error": e.error, "key": key,
                         "stderr_tail": e.stderr_tail or None}, "error"
        except Exception as e:  # pragma: no cover - defensive
            return 500, {"error": f"{type(e).__name__}: {e}",
                         "key": key}, "error"
        return 200, self._ok_payload(key, source, summary), source

    def _ok_payload(self, key: str, source: str,
                    summary: RunResultSummary) -> dict:
        return {"key": key, "source": source,
                "summary": summary.to_dict()}

    # -- admission / backpressure --------------------------------------
    async def _admit(self, wait: bool) -> bool:
        if self._pending_compute < self.config.backlog:
            self._pending_compute += 1
            return True
        if not wait:
            return False
        async with self._space:
            await self._space.wait_for(
                lambda: self._pending_compute < self.config.backlog
                or self._draining)
            if self._draining:
                # Caller re-checks the flag; take no slot.
                self._pending_compute += 1
                return True
            self._pending_compute += 1
            return True

    async def _release_slot(self) -> None:
        self._pending_compute -= 1
        async with self._space:
            self._space.notify(1)

    def _retry_after_estimate(self) -> float:
        mean = self.metrics.compute_latency.snapshot()["mean_s"] or 0.5
        lanes = max(1, self.config.jobs)
        return round(max(0.1, self._pending_compute * mean / lanes), 2)

    # -- dispatcher / computation --------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self.config.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            await self._prebuild_batch(batch)
            for item in batch:
                task = asyncio.create_task(self._compute(item))
                self._compute_tasks.add(task)
                task.add_done_callback(self._compute_tasks.discard)

    async def _prebuild_batch(self, batch) -> None:
        """Build each distinct prep artifact of the batch once, here.

        The cache-aware half of batching: cells sharing a decomposition
        (same matrix/block size/solver/options) share a prep artifact,
        so the parent builds it once and every pool worker *loads* it.
        Only worth the thread hop when real worker processes exist, and
        a failure is deliberately swallowed — the cell's own run will
        surface it through the retry machinery with full diagnostics.
        """
        if self.config.jobs <= 0:
            return
        from repro.analysis.experiment import prebuild_prep
        from repro.bench.prep import default_prep_store

        if not default_prep_store().enabled:
            return
        for item in batch:
            c = item.config
            sig = (c["machine"], c["matrix"], c["solver"], c["version"],
                   c.get("block_count"), c.get("width"),
                   c.get("first_touch", True))
            if sig in self._prebuilt:
                continue
            self._prebuilt.add(sig)
            try:
                await asyncio.to_thread(
                    prebuild_prep, c["machine"], c["matrix"],
                    c["solver"], c["version"],
                    block_count=int(c.get("block_count") or 64),
                    width=c.get("width"),
                    first_touch=bool(c.get("first_touch", True)),
                )
            except Exception:
                self._prebuilt.discard(sig)

    async def _compute(self, item: _Pending) -> None:
        async with self._sem:
            try:
                summary_dict, dt = await self.pool.run(item.config)
            except Exception as e:
                await self._release_slot()
                self._inflight.pop(item.key, None)
                if not item.future.done():
                    item.future.set_exception(e)
                return
        summary = RunResultSummary.from_dict(summary_dict)
        self.cache.put(item.config, summary)
        self.metrics.count_computation(dt)
        await self._release_slot()
        self._inflight.pop(item.key, None)
        if not item.future.done():
            item.future.set_result(summary)

    # -- HTTP layer ----------------------------------------------------
    async def _route(self, req: Request) -> tuple:
        """-> (status, payload, source, key, n_cells)."""
        if req.path == "/healthz":
            return 200, self._healthz_payload(), None, None, 0
        if req.path == "/metrics":
            return 200, self.metrics_payload(), None, None, 0
        if req.path == "/v1/cell":
            if req.method != "POST":
                raise HttpError(405, "POST required")
            doc = req.json()
            status, payload, source = await self.submit_cell(doc)
            return status, payload, source, payload.get("key"), 1
        if req.path == "/v1/sweep":
            if req.method != "POST":
                raise HttpError(405, "POST required")
            return await self._route_sweep(req.json())
        raise HttpError(404, f"no route for {req.path}")

    async def _route_sweep(self, doc: dict) -> tuple:
        cells = sweep_cells_from_doc(doc, self.config.max_sweep_cells)
        # Every cell goes through the one submit path, so dedupe,
        # caching, and single-flight apply exactly as for single
        # requests — a sweep racing identical single submits coalesces
        # with them.  Cells *wait* for backlog space rather than 429.
        results = await asyncio.gather(*[
            self.submit_cell(cell_to_doc(c), wait=True)
            for c in cells
        ])
        entries = []
        worst = 200
        for (status, payload, _source), cell in zip(results, cells):
            entries.append({"cell": cell.label(), "status": status,
                            **payload})
            worst = max(worst, status)
        return 200, {"n_cells": len(entries),
                     "worst_status": worst,
                     "cells": entries}, "sweep", None, len(entries)

    # -- observability -------------------------------------------------
    def _healthz_payload(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": time.time() - self.metrics.started_at,
            "pending_compute": self._pending_compute,
            "inflight_keys": len(self._inflight),
            "jobs": self.config.jobs,
        }

    def metrics_payload(self) -> dict:
        snap = self.metrics.snapshot()
        snap["queue"] = {
            "depth": self._queue.qsize(),
            "pending_compute": self._pending_compute,
            "backlog": self.config.backlog,
            "high_water": self.metrics.queue_high_water,
        }
        snap["pool"] = self.pool.stats()
        snap["result_cache"] = self.cache.stats()
        snap["draining"] = self._draining
        snap["cost_model_version"] = COST_MODEL_VERSION
        return snap


# ----------------------------------------------------------------------
def install_signal_handlers(service: SimulationService,
                            loop: asyncio.AbstractEventLoop) -> None:
    """SIGTERM/SIGINT -> graceful drain (the contract CI relies on)."""
    import signal

    def _begin_drain():
        asyncio.ensure_future(service.drain())

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, _begin_drain)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-Unix fallback: default handlers remain


async def serve_main(config: ServeConfig,
                     announce: Optional[Callable[[str], None]] = None
                     ) -> int:
    """Run the daemon until drained; returns the process exit code."""
    service = SimulationService(config)
    await service.start()
    install_signal_handlers(service, asyncio.get_running_loop())
    if announce is not None:
        announce(f"repro serve: listening on "
                 f"http://{config.host}:{service.port} "
                 f"(jobs={config.jobs}, backlog={config.backlog}, "
                 f"pid={__import__('os').getpid()})")
    await service.serve_until_stopped()
    return 0


class BackgroundService:
    """Run a :class:`SimulationService` on a thread-owned event loop.

    The loopback test harness and embedding callers use this to stand
    a real daemon up inside the current process::

        with BackgroundService(ServeConfig(port=0)) as bg:
            client = ServiceClient(port=bg.port)
            ...

    ``stop()`` performs the same graceful drain as SIGTERM.

    Subclasses point ``daemon_class`` at any object with the same
    lifecycle protocol (``start`` / ``port`` / ``serve_until_stopped``
    / ``drain``) — :class:`repro.serve.router.BackgroundRouter` runs
    the cluster router this way.
    """

    daemon_class = SimulationService

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig(port=0)
        self.service: Optional[SimulationService] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "BackgroundService":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") \
                from self._startup_error
        if self.port is None:
            raise RuntimeError("service did not come up within 30 s")
        return self

    def _run(self) -> None:
        async def main():
            self.service = self.daemon_class(self.config)
            try:
                await self.service.start()
            except BaseException as e:
                self._startup_error = e
                self._ready.set()
                raise
            self.port = self.service.port
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.service.serve_until_stopped()

        try:
            asyncio.run(main())
        except BaseException:
            self._ready.set()

    def drain(self, timeout: float = 30.0) -> None:
        if (self._loop is None or self.service is None
                or self._loop.is_closed()):
            return  # already drained (idempotent, like SIGTERM twice)
        import concurrent.futures

        try:
            fut = asyncio.run_coroutine_threadsafe(
                self.service.drain(), self._loop)
            fut.result(timeout=timeout)
        except (RuntimeError, concurrent.futures.CancelledError):
            # Loop stopped between the check and the call, or a
            # concurrent drain won the race and shut it down first —
            # either way the service is down, which is what we wanted.
            pass

    def stop(self, timeout: float = 30.0) -> None:
        self.drain(timeout=timeout)
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundService":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False
