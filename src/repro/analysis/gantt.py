"""Flow-graph rendering helpers (Figs. 10 and 13 as text).

Wraps :meth:`repro.sim.flowgraph.FlowGraph.to_gantt` with the summary
statistics the paper's flow-graph discussion draws on: per-kernel
envelopes, overlap fraction (pipelining signature), and utilization.
"""

from __future__ import annotations

from repro.sim.engine import RunResult

__all__ = ["render_flow"]


def render_flow(result: RunResult, width: int = 90,
                max_cores: int = 16) -> str:
    """Gantt + kernel-envelope summary for one run."""
    flow = result.flow
    lines = [
        f"{result.policy} on {result.machine} "
        f"({result.n_cores} cores, {len(flow)} task executions)",
        flow.to_gantt(width=width, max_cores=max_cores),
        "",
        "kernel envelopes (ms):",
    ]
    for k, (lo, hi) in sorted(flow.kernel_envelopes().items(),
                              key=lambda kv: kv[1]):
        lines.append(f"  {k:12s} [{lo * 1e3:9.3f}, {hi * 1e3:9.3f}]")
    lines.append(
        f"kernel overlap fraction: {flow.kernel_overlap_fraction():.2f} "
        "(0 = phased/BSP, higher = pipelined)"
    )
    lines.append(f"utilization: {flow.utilization(result.n_cores):.2f}")
    return "\n".join(lines)
