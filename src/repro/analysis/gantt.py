"""Timeline rendering (Figs. 10 and 13 as text) — trace-backed.

The renderer consumes the structured event stream of
:mod:`repro.trace` (one :class:`~repro.trace.TaskEvent` per executed
task) rather than poking at ad-hoc flow records: the same code renders
a live :class:`~repro.trace.Tracer`, a reloaded JSONL event file, or —
through :func:`render_flow` — a :class:`RunResult` whose flow records
are converted into task events on the fly.  Summary statistics (kernel
envelopes, overlap fraction, utilization, idle/queue series) come from
the same stream.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.engine import RunResult
from repro.trace.events import TaskEvent
from repro.trace.metrics import metrics_from_events

__all__ = ["render_flow", "render_trace", "render_gantt", "task_events"]


def task_events(events: Iterable) -> List[TaskEvent]:
    """The task events of a stream, in emit order."""
    return [e for e in events if getattr(e, "kind", None) == "task"]


def flow_to_task_events(flow) -> List[TaskEvent]:
    """Adapt a :class:`~repro.sim.flowgraph.FlowGraph` to task events.

    Flow records carry no charge decomposition or miss attribution, so
    those args are zero; timing/lane fields are exact.  Returns an
    empty list for cached :class:`FlowSummary` objects (no records).
    """
    records = getattr(flow, "records", None)
    if not records:
        return []
    return [
        TaskEvent(r.tid, r.kernel, r.core, r.start, r.end, r.iteration,
                  0.0, 0.0, 0.0, 0, 0, 0)
        for r in records
    ]


# ----------------------------------------------------------------------
def render_gantt(events: Iterable, width: int = 100,
                 max_cores: int = 32) -> str:
    """ASCII Gantt from task events: one row per lane, letter = kernel.

    Replay-synthesized events render in lowercase so the steady-state
    takeover is visible in the timeline itself.
    """
    tasks = task_events(events)
    if not tasks:
        return "(no task events)"
    span = max(t.end for t in tasks)
    kernels = sorted({t.kernel for t in tasks})
    letters = {k: chr(ord("A") + i % 26) for i, k in enumerate(kernels)}
    cores = sorted({t.core for t in tasks})[:max_cores]
    by_core: Dict[int, list] = {c: [] for c in cores}
    for t in tasks:
        if t.core in by_core:
            by_core[t.core].append(t)
    lines = []
    legend = "  ".join(f"{letters[k]}={k}" for k in kernels)
    lines.append(f"makespan {span * 1e3:.3f} ms   {legend}")
    for c in cores:
        row = [" "] * width
        for t in by_core[c]:
            a = int(t.start / span * (width - 1))
            b = max(a + 1, int(t.end / span * (width - 1)) + 1)
            ch = letters[t.kernel]
            if t.synthesized:
                ch = ch.lower()
            for x in range(a, min(b, width)):
                row[x] = ch
        lines.append(f"core {c:3d} |{''.join(row)}|")
    return "\n".join(lines)


def _kernel_envelopes(tasks) -> Dict[str, Tuple[float, float]]:
    env: Dict[str, Tuple[float, float]] = {}
    for t in tasks:
        lo, hi = env.get(t.kernel, (t.start, t.end))
        env[t.kernel] = (min(lo, t.start), max(hi, t.end))
    return env


def _overlap_fraction(env: Dict[str, Tuple[float, float]]) -> float:
    spans = sorted(env.values())
    if len(spans) < 2:
        return 0.0
    total = sum(hi - lo for lo, hi in spans)
    if total <= 0:
        return 0.0
    overlap = 0.0
    for i, (lo1, hi1) in enumerate(spans):
        for lo2, hi2 in spans[i + 1:]:
            if lo2 >= hi1:
                break
            overlap += max(0.0, min(hi1, hi2) - max(lo1, lo2))
    return min(1.0, overlap / total)


def _summary_lines(tasks, n_cores: Optional[int]) -> List[str]:
    env = _kernel_envelopes(tasks)
    lines = ["", "kernel envelopes (ms):"]
    for k, (lo, hi) in sorted(env.items(), key=lambda kv: kv[1]):
        lines.append(f"  {k:12s} [{lo * 1e3:9.3f}, {hi * 1e3:9.3f}]")
    lines.append(
        f"kernel overlap fraction: {_overlap_fraction(env):.2f} "
        "(0 = phased/BSP, higher = pipelined)"
    )
    if n_cores:
        span = max((t.end for t in tasks), default=0.0)
        busy = sum(t.end - t.start for t in tasks)
        util = busy / (span * n_cores) if span > 0 else 0.0
        lines.append(f"utilization: {util:.2f}")
    return lines


# ----------------------------------------------------------------------
def render_trace(tracer=None, events: Optional[Iterable] = None,
                 meta: Optional[dict] = None, width: int = 90,
                 max_cores: int = 16) -> str:
    """Gantt + envelope summary + per-iteration metrics for one trace."""
    if tracer is not None:
        events = tracer.events if events is None else events
        meta = dict(tracer.meta, **(meta or {}))
    events = list(events or [])
    meta = meta or {}
    n_cores = meta.get("n_cores")
    tasks = task_events(events)
    header = (f"{meta.get('policy', '?')} on {meta.get('machine', '?')} "
              f"({n_cores if n_cores is not None else '?'} cores, "
              f"{len(tasks)} task events)")
    lines = [header, render_gantt(events, width=width,
                                  max_cores=max_cores)]
    lines += _summary_lines(tasks, n_cores)
    table = metrics_from_events(events, n_cores=n_cores, meta=meta)
    if len(table):
        lines += ["", "per-iteration metrics:", table.render()]
    return "\n".join(lines)


def render_flow(result: RunResult, width: int = 90,
                max_cores: int = 16) -> str:
    """Gantt + kernel-envelope summary for one run (flow-record view).

    Kept as the :class:`RunResult`-facing façade; internally the flow
    records are adapted into trace task events and rendered by the
    same code path as :func:`render_trace`.  Cached results
    (:class:`FlowSummary`, no records) degrade to the summary's own
    placeholder text.
    """
    flow = result.flow
    tasks = flow_to_task_events(flow)
    header = (f"{result.policy} on {result.machine} "
              f"({result.n_cores} cores, {len(flow)} task executions)")
    if not tasks:
        return "\n".join([header, flow.to_gantt(width=width,
                                                max_cores=max_cores)])
    lines = [header, render_gantt(tasks, width=width,
                                  max_cores=max_cores)]
    lines += _summary_lines(tasks, result.n_cores)
    return "\n".join(lines)
