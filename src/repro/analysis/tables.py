"""ASCII table and bar renderers for benchmark output.

The benches print the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and readable in a
terminal and in the captured ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["render_table", "render_bars"]


def render_table(
    rows: Dict[str, Dict[str, float]],
    columns: Sequence[str] = None,
    fmt: str = "{:.2f}",
    row_header: str = "matrix",
) -> str:
    """Render ``row -> {column: value}`` as an aligned text table."""
    if columns is None:
        columns = sorted({c for r in rows.values() for c in r})
    name_w = max([len(row_header)] + [len(r) for r in rows]) + 2
    col_w = max([10] + [len(c) + 2 for c in columns])
    out: List[str] = []
    out.append(row_header.ljust(name_w) + "".join(
        c.rjust(col_w) for c in columns
    ))
    out.append("-" * (name_w + col_w * len(columns)))
    for rname, vals in rows.items():
        cells = []
        for c in columns:
            v = vals.get(c)
            cells.append(("-" if v is None else fmt.format(v)).rjust(col_w))
        out.append(rname.ljust(name_w) + "".join(cells))
    return "\n".join(out)


def render_bars(
    values: Dict[str, float],
    width: int = 40,
    fmt: str = "{:.2f}",
    vmax: float = None,
) -> str:
    """Render a label→value mapping as horizontal ASCII bars."""
    if not values:
        return "(empty)"
    if vmax is None:
        vmax = max(values.values()) or 1.0
    name_w = max(len(k) for k in values) + 2
    out = []
    for k, v in values.items():
        n = max(0, min(width, int(round(v / vmax * width))))
        out.append(f"{k.ljust(name_w)}|{'#' * n}{' ' * (width - n)}| "
                   f"{fmt.format(v)}")
    return "\n".join(out)
