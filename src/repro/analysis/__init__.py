"""Result reduction and rendering: the paper's tables and plots as text.

Benchmarks produce :class:`~repro.sim.engine.RunResult` objects; this
package turns collections of them into the normalized-miss and speedup
series of Figs. 8–12, ASCII bar/table renderings, and Gantt text for
the execution flow graphs of Figs. 10/13.
"""

from repro.analysis.metrics import (
    SolverComparison,
    compare_versions,
    speedup_table,
    normalized_miss_table,
)
from repro.analysis.tables import render_table, render_bars
from repro.analysis.gantt import render_flow, render_gantt, render_trace

__all__ = [
    "SolverComparison",
    "compare_versions",
    "speedup_table",
    "normalized_miss_table",
    "render_table",
    "render_bars",
    "render_flow",
    "render_gantt",
    "render_trace",
]
