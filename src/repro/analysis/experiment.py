"""Experiment driver: one call per (machine, matrix, solver) cell.

Benchmarks for Figs. 8–14 all need the same wiring — full-scale block
census, solver trace, per-version DAG, runtime execution — so it lives
here once.  Censuses, traces, *and built DAGs* are memoized per
process: a sweep over versions or block counts regenerates nothing,
and versions that share a decomposition policy (deepsparse/hpx/regent/
libcsb all default to the same :class:`BuildOptions`) share one DAG
object.  Sharing is safe because execution never mutates a DAG — the
engines read tasks/succ/pred and keep all mutable state (cache
hierarchy, cost prep, flow records) on their own side.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Sequence

from repro.analysis.metrics import SolverComparison
from repro.machine.presets import get_machine
from repro.matrices.census import census_for
from repro.matrices.suite import SUITE
from repro.runtime import (
    BSPRuntime,
    DeepSparseRuntime,
    HPXRuntime,
    RegentRuntime,
    build_solver_dag,
    libcsr_partitions,
)
from repro.solvers import lanczos_trace, lobpcg_trace
from repro.tuning.blocksize import block_size_for_count

__all__ = ["run_cell", "run_version", "ALL_VERSIONS", "DEFAULT_WIDTHS"]

ALL_VERSIONS = ("libcsr", "libcsb", "deepsparse", "hpx", "regent")

#: Paper vector-block widths: LOBPCG blocks have 8–16 columns.
DEFAULT_WIDTHS = {"lobpcg": 8, "lanczos": 20}  # lanczos: Krylov basis size


@lru_cache(maxsize=256)
def _census(matrix: str, block_size: int):
    return census_for(SUITE[matrix], block_size)


@lru_cache(maxsize=256)
def _trace(matrix: str, block_size: int, solver: str, width: int):
    cen = _census(matrix, block_size)
    if solver == "lobpcg":
        return (cen,) + lobpcg_trace(cen, n=width)
    if solver == "lanczos":
        return (cen,) + lanczos_trace(cen, k=width)
    raise ValueError(f"unknown solver {solver!r}")


@lru_cache(maxsize=128)
def _dag(matrix: str, block_size: int, solver: str, width: int, options):
    """One built DAG per (trace, BuildOptions) — shared across runtimes.

    ``BuildOptions`` is a frozen dataclass, hence hashable; versions
    with identical decomposition policies get the *same* DAG object,
    which also lets the cost model reuse its per-task pricing
    invariants (see :meth:`repro.sim.cost.CostModel.prepare`).
    """
    cen, calls, chunked, small = _trace(matrix, block_size, solver, width)
    return build_solver_dag(cen, calls, chunked, small, "A", options)


def _make_runtime(version: str, machine, first_touch: bool, seed: int,
                  **overrides):
    if version == "libcsr":
        return BSPRuntime(machine, "libcsr", first_touch, seed)
    if version == "libcsb":
        return BSPRuntime(machine, "libcsb", first_touch, seed)
    if version == "deepsparse":
        return DeepSparseRuntime(machine, first_touch, seed, **overrides)
    if version == "hpx":
        return HPXRuntime(machine, first_touch, seed, **overrides)
    if version == "regent":
        return RegentRuntime(machine, first_touch, seed, **overrides)
    raise ValueError(f"unknown version {version!r}")


def run_version(
    machine_name: str,
    matrix: str,
    solver: str,
    version: str,
    block_count: int = 64,
    iterations: int = 2,
    width: int = None,
    first_touch: bool = True,
    seed: int = 0,
    options=None,
    tracer=None,
    faults=None,
    **runtime_overrides,
):
    """Run one solver version and return its :class:`RunResult`.

    ``libcsr`` ignores ``block_count`` — its granularity is one row
    chunk per core, per the MKL/CSR baseline definition.

    ``tracer`` (optional :class:`repro.trace.Tracer`) attaches the
    observability layer to the execution; simulated numbers are
    bit-identical with or without it.  ``faults`` (optional
    :class:`repro.faults.FaultPlan`) attaches deterministic fault
    injection; an empty plan is bit-identical to ``faults=None``.
    """
    machine = get_machine(machine_name)
    spec = SUITE[matrix]
    if solver not in DEFAULT_WIDTHS:
        raise ValueError(f"unknown solver {solver!r}")
    width = width or DEFAULT_WIDTHS[solver]
    if version == "libcsr":
        bs = libcsr_partitions(machine, spec.paper_rows)
    else:
        bs = block_size_for_count(spec.paper_rows, block_count)
    rt = _make_runtime(version, machine, first_touch, seed,
                       **runtime_overrides)
    if options is not None:
        rt.options = options
    dag = _dag(matrix, bs, solver, width, rt.options)
    return rt.execute(dag, iterations=iterations, tracer=tracer,
                      faults=faults)


def run_cell(
    machine_name: str,
    matrix: str,
    solver: str,
    block_count: int = 64,
    iterations: int = 2,
    width: int = None,
    versions: Sequence[str] = ALL_VERSIONS,
    first_touch: bool = True,
) -> SolverComparison:
    """All requested versions of one evaluation cell, libcsr included."""
    versions = list(versions)
    if "libcsr" not in versions:
        versions = ["libcsr"] + versions
    results: Dict[str, object] = {}
    for v in versions:
        results[v] = run_version(
            machine_name, matrix, solver, v,
            block_count=block_count, iterations=iterations,
            width=width, first_touch=first_touch,
        )
    return SolverComparison(matrix, solver, machine_name, results)
