"""Experiment driver: one call per (machine, matrix, solver) cell.

Benchmarks for Figs. 8–14 all need the same wiring — full-scale block
census, solver trace, per-version DAG, runtime execution — so it lives
here once.  Censuses, traces, *and built DAGs* are memoized per
process: a sweep over versions or block counts regenerates nothing,
and versions that share a decomposition policy (deepsparse/hpx/regent/
libcsb all default to the same :class:`BuildOptions`) share one DAG
object.  Sharing is safe because execution never mutates a DAG — the
engines read tasks/succ/pred and keep all mutable state (cache
hierarchy, cost prep, flow records) on their own side.

Layered over the in-process memos is the cross-process *prep store*
(:mod:`repro.bench.prep`): :func:`_prepped_dag` first tries to load a
persisted artifact — census + built DAG with frozen
structure-of-arrays view, interned tables, and compiled access plans —
and only on a store miss builds everything, compiles the prep against
the target machine, and writes the artifact through.  With the store
disabled (``REPRO_NO_PREP=1``) it degrades to exactly the old
in-process ``lru_cache`` behaviour.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Sequence

from repro.analysis.metrics import SolverComparison
from repro.machine.presets import get_machine
from repro.matrices.census import census_for
from repro.matrices.suite import SUITE
from repro.runtime import (
    BSPRuntime,
    DeepSparseRuntime,
    HPXRuntime,
    RegentRuntime,
    build_solver_dag,
    libcsr_partitions,
)
from repro.solvers import lanczos_trace, lobpcg_trace
from repro.tuning.blocksize import block_size_for_count

__all__ = [
    "run_cell", "run_version", "ALL_VERSIONS", "DEFAULT_WIDTHS",
    "prep_config", "prebuild_prep",
]

ALL_VERSIONS = ("libcsr", "libcsb", "deepsparse", "hpx", "regent")

#: Paper vector-block widths: LOBPCG blocks have 8–16 columns.
DEFAULT_WIDTHS = {"lobpcg": 8, "lanczos": 20}  # lanczos: Krylov basis size


#: Censuses adopted from loaded prep artifacts, consulted before
#: building from scratch: a store hit for one solver primes the census
#: for every other cell sharing (matrix, block_size) in this process.
_census_loaded: dict = {}


@lru_cache(maxsize=256)
def _census(matrix: str, block_size: int):
    adopted = _census_loaded.get((matrix, block_size))
    if adopted is not None:
        return adopted
    return census_for(SUITE[matrix], block_size)


@lru_cache(maxsize=256)
def _trace(matrix: str, block_size: int, solver: str, width: int):
    cen = _census(matrix, block_size)
    if solver == "lobpcg":
        return (cen,) + lobpcg_trace(cen, n=width)
    if solver == "lanczos":
        return (cen,) + lanczos_trace(cen, k=width)
    raise ValueError(f"unknown solver {solver!r}")


@lru_cache(maxsize=128)
def _dag(matrix: str, block_size: int, solver: str, width: int, options):
    """One built DAG per (trace, BuildOptions) — shared across runtimes.

    ``BuildOptions`` is a frozen dataclass, hence hashable; versions
    with identical decomposition policies get the *same* DAG object,
    which also lets the cost model reuse its per-task pricing
    invariants (see :meth:`repro.sim.cost.CostModel.prepare`).
    """
    cen, calls, chunked, small = _trace(matrix, block_size, solver, width)
    return build_solver_dag(cen, calls, chunked, small, "A", options)


def prep_config(machine_name: str, matrix: str, block_size: int,
                solver: str, width: int, options,
                first_touch: bool = True) -> dict:
    """Content-address config of one prep artifact.

    The machine is part of the key because compiled access plans embed
    machine constants (cache capacities, line costs); ``options`` is a
    frozen :class:`~repro.graph.builder.BuildOptions`, keyed by its
    (deterministic) dataclass repr.
    """
    return {
        "kind": "prep",
        "machine": machine_name,
        "matrix": matrix,
        "block_size": int(block_size),
        "solver": solver,
        "width": int(width),
        "options": repr(options),
        "first_touch": bool(first_touch),
    }


def _compile_prep(machine_name: str, dag, first_touch: bool = True):
    """Compile every reusable per-run invariant onto the DAG.

    Mirrors the engine's run setup exactly (configure memory → resolve
    partitions → compile plans → scheduler domain tables) against a
    throwaway memory/cache stack, so the artifact a worker loads
    carries the same ``_cost_prep``/``_home_arrays``/``_sched_domains``
    a live run would have produced.
    """
    from repro.machine.cache import CacheHierarchy
    from repro.machine.memory import MemoryModel
    from repro.sim.cost import CostModel
    from repro.sim.engine import _bsp_phase_assignments, _max_partitions
    from repro.sim.schedulers import _domain_tables

    machine = get_machine(machine_name)
    memory = MemoryModel(machine, first_touch=first_touch)
    memory.configure_from_dag(dag)
    if memory.n_parts is None:
        memory.n_parts = _max_partitions(dag)
    CostModel(machine, CacheHierarchy(machine), memory).prepare(dag)
    _domain_tables(dag, memory)
    _bsp_phase_assignments(dag, machine.n_cores)


@lru_cache(maxsize=128)
def _prepped_dag(machine_name: str, matrix: str, block_size: int,
                 solver: str, width: int, options,
                 first_touch: bool = True):
    """One executable DAG per cell subkey, via the prep store.

    Store hit: the loaded DAG arrives with its frozen SoA view,
    interned tables, and compiled plans — no trace, no builder, no
    plan compile; the artifact's census also primes :func:`_census`
    for sibling cells.  Store miss (or store disabled): build through
    the in-process memos; on a miss with the store enabled, compile
    the prep and write the artifact through so the *next* process (or
    pool worker) loads it.
    """
    from repro.bench.prep import default_prep_store

    store = default_prep_store()
    if not store.enabled:
        return _dag(matrix, block_size, solver, width, options)
    config = prep_config(machine_name, matrix, block_size, solver,
                         width, options, first_touch)
    artifact = store.get(config)
    if artifact is not None:
        _census_loaded.setdefault((matrix, block_size),
                                  artifact["census"])
        return artifact["dag"]
    dag = _dag(matrix, block_size, solver, width, options)
    _compile_prep(machine_name, dag, first_touch)
    # The charge memo is excluded from the artifact: its keys embed
    # id(plans), which is meaningless in another process.  Popping it
    # here is safe — engines lazily recreate it against the (shared)
    # compiled plans.
    memo = dag.__dict__.pop("_charge_memo", None)
    try:
        store.put(config, {"config": config,
                           "census": _census(matrix, block_size),
                           "dag": dag})
    finally:
        if memo is not None:
            dag._charge_memo = memo
    return dag


def prebuild_prep(machine_name: str, matrix: str, solver: str,
                  version: str, block_count: int = 64,
                  width: int = None, first_touch: bool = True,
                  options=None) -> dict:
    """Ensure the prep artifact for one cell exists; returns its config.

    Used by :class:`repro.bench.runner.ExperimentRunner` to build each
    distinct artifact once in the parent before pool workers fan out,
    and by the ``repro prep build`` CLI.
    """
    machine = get_machine(machine_name)
    spec = SUITE[matrix]
    width = width or DEFAULT_WIDTHS[solver]
    if version == "libcsr":
        bs = libcsr_partitions(machine, spec.paper_rows)
    else:
        bs = block_size_for_count(spec.paper_rows, block_count)
    if options is None:
        options = _make_runtime(version, machine, first_touch, 0).options
    _prepped_dag(machine_name, matrix, bs, solver, width, options,
                 first_touch)
    return prep_config(machine_name, matrix, bs, solver, width, options,
                       first_touch)


def _make_runtime(version: str, machine, first_touch: bool, seed: int,
                  **overrides):
    if version == "libcsr":
        return BSPRuntime(machine, "libcsr", first_touch, seed)
    if version == "libcsb":
        return BSPRuntime(machine, "libcsb", first_touch, seed)
    if version == "deepsparse":
        return DeepSparseRuntime(machine, first_touch, seed, **overrides)
    if version == "hpx":
        return HPXRuntime(machine, first_touch, seed, **overrides)
    if version == "regent":
        return RegentRuntime(machine, first_touch, seed, **overrides)
    raise ValueError(f"unknown version {version!r}")


def run_version(
    machine_name: str,
    matrix: str,
    solver: str,
    version: str,
    block_count: int = 64,
    iterations: int = 2,
    width: int = None,
    first_touch: bool = True,
    seed: int = 0,
    options=None,
    tracer=None,
    faults=None,
    **runtime_overrides,
):
    """Run one solver version and return its :class:`RunResult`.

    ``libcsr`` ignores ``block_count`` — its granularity is one row
    chunk per core, per the MKL/CSR baseline definition.

    ``tracer`` (optional :class:`repro.trace.Tracer`) attaches the
    observability layer to the execution; simulated numbers are
    bit-identical with or without it.  ``faults`` (optional
    :class:`repro.faults.FaultPlan`) attaches deterministic fault
    injection; an empty plan is bit-identical to ``faults=None``.
    """
    machine = get_machine(machine_name)
    spec = SUITE[matrix]
    if solver not in DEFAULT_WIDTHS:
        raise ValueError(f"unknown solver {solver!r}")
    width = width or DEFAULT_WIDTHS[solver]
    if version == "libcsr":
        bs = libcsr_partitions(machine, spec.paper_rows)
    else:
        bs = block_size_for_count(spec.paper_rows, block_count)
    rt = _make_runtime(version, machine, first_touch, seed,
                       **runtime_overrides)
    if options is not None:
        rt.options = options
    dag = _prepped_dag(machine_name, matrix, bs, solver, width,
                       rt.options, first_touch)
    return rt.execute(dag, iterations=iterations, tracer=tracer,
                      faults=faults)


def run_cell(
    machine_name: str,
    matrix: str,
    solver: str,
    block_count: int = 64,
    iterations: int = 2,
    width: int = None,
    versions: Sequence[str] = ALL_VERSIONS,
    first_touch: bool = True,
) -> SolverComparison:
    """All requested versions of one evaluation cell, libcsr included."""
    versions = list(versions)
    if "libcsr" not in versions:
        versions = ["libcsr"] + versions
    results: Dict[str, object] = {}
    for v in versions:
        results[v] = run_version(
            machine_name, matrix, solver, v,
            block_count=block_count, iterations=iterations,
            width=width, first_touch=first_touch,
        )
    return SolverComparison(matrix, solver, machine_name, results)
