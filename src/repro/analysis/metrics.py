"""Comparison metrics: speedups and normalized cache misses vs libcsr.

All of the paper's evaluation plots normalize against the ``libcsr``
baseline: "Cache misses were normalized with respect to that of libcsr,
and speedups were calculated over libcsr."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.engine import RunResult

__all__ = [
    "SolverComparison",
    "compare_versions",
    "speedup_table",
    "normalized_miss_table",
]

BASELINE = "libcsr"


@dataclass
class SolverComparison:
    """All five versions of one (matrix, solver, machine) cell."""

    matrix: str
    solver: str
    machine: str
    results: Dict[str, RunResult]

    def __post_init__(self):
        if BASELINE not in self.results:
            raise ValueError(f"comparison requires a {BASELINE} baseline")

    @property
    def baseline(self) -> RunResult:
        return self.results[BASELINE]

    def speedup(self, version: str) -> float:
        """Speedup of a version over libcsr (>1 is faster)."""
        return self.results[version].speedup_over(self.baseline)

    def miss_reduction(self, version: str, level: int) -> float:
        """k× fewer misses than libcsr at cache level 1, 2, or 3."""
        if level not in (1, 2, 3):
            raise ValueError("cache level must be 1, 2 or 3")
        norm = self.results[version].counters.normalized_misses(
            self.baseline.counters
        )[level - 1]
        return 1.0 / norm if norm > 0 else float("inf")

    def versions(self):
        return [v for v in self.results if v != BASELINE]


def compare_versions(matrix, solver, machine, results) -> SolverComparison:
    """Convenience constructor with validation."""
    return SolverComparison(matrix, solver, machine, dict(results))


def speedup_table(comparisons) -> Dict[str, Dict[str, float]]:
    """``matrix -> {version: speedup}`` over a list of comparisons."""
    out: Dict[str, Dict[str, float]] = {}
    for c in comparisons:
        out[c.matrix] = {v: c.speedup(v) for v in c.versions()}
    return out


def normalized_miss_table(
    comparisons, level: int
) -> Dict[str, Dict[str, float]]:
    """``matrix -> {version: k× fewer misses}`` at one cache level."""
    out: Dict[str, Dict[str, float]] = {}
    for c in comparisons:
        out[c.matrix] = {
            v: c.miss_reduction(v, level) for v in c.versions()
        }
    return out
