"""Performance profiles (Dolan–Moré curves) over block-count buckets.

Fig. 14 compares the six block-count buckets per runtime/architecture:
for each matrix, each bucket's execution time is divided by the best
bucket's time on that matrix; the profile at τ is the fraction of
matrices where a bucket is within τ× of the best.  Higher and earlier
curves are better buckets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["PerformanceProfile", "performance_profiles"]


@dataclass
class PerformanceProfile:
    """Profile of one bucket over a set of problem instances."""

    bucket: Tuple[int, int]
    ratios: List[float] = field(default_factory=list)

    def value_at(self, tau: float) -> float:
        """Fraction of instances within ``tau`` of the per-instance best."""
        if not self.ratios:
            return 0.0
        return sum(1 for r in self.ratios if r <= tau) / len(self.ratios)

    def curve(self, taus: Sequence[float]) -> List[float]:
        return [self.value_at(t) for t in taus]

    def area(self, tau_max: float = 2.0, steps: int = 50) -> float:
        """Area under the profile on [1, tau_max] — the ranking score."""
        taus = [1.0 + (tau_max - 1.0) * k / (steps - 1) for k in range(steps)]
        vals = self.curve(taus)
        h = (tau_max - 1.0) / (steps - 1)
        return sum((a + b) * 0.5 * h for a, b in zip(vals, vals[1:]))


def performance_profiles(
    times: Dict[str, Dict[Tuple[int, int], float]]
) -> Dict[Tuple[int, int], PerformanceProfile]:
    """Build bucket profiles from per-matrix bucket times.

    Parameters
    ----------
    times:
        ``matrix name -> {bucket: execution time}``.  Buckets missing
        on some matrix are treated as absent from that instance (not
        penalized), matching how degenerate small-matrix buckets are
        dropped.
    """
    buckets = sorted({b for per in times.values() for b in per})
    profiles = {b: PerformanceProfile(b) for b in buckets}
    for _mat, per in times.items():
        if not per:
            continue
        best = min(per.values())
        if best <= 0:
            raise ValueError("non-positive execution time in profile input")
        for b, t in per.items():
            profiles[b].ratios.append(t / best)
    return profiles
