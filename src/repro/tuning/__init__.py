"""Block-size selection: the paper's §5.4 tuning heuristic.

The CSB block size sets task granularity, degree of parallelism, and
scheduling overhead at once.  The paper brute-forces block sizes from
2¹⁰ to 2²⁴ and observes that the optimum always lands at a **block
count** (blocks per dimension) between 8 and 511, reducing the search
to six bucketed candidates; performance profiles over the matrix suite
then rank the buckets per runtime and architecture (Fig. 14).
"""

from repro.tuning.blocksize import (
    BLOCK_COUNT_BUCKETS,
    block_size_for_count,
    bucket_of_count,
    candidate_block_sizes,
    recommend_block_count,
    sweep_block_counts,
    sweep_block_sizes,
)
from repro.tuning.profiles import PerformanceProfile, performance_profiles

__all__ = [
    "BLOCK_COUNT_BUCKETS",
    "block_size_for_count",
    "bucket_of_count",
    "candidate_block_sizes",
    "recommend_block_count",
    "sweep_block_counts",
    "sweep_block_sizes",
    "PerformanceProfile",
    "performance_profiles",
]
