"""Block-count buckets and the rule-of-thumb selector (§5.4).

"Choosing a small block size creates a large number of small tasks …
 may lead to significant scheduling overheads.  Increasing the block
 size reduces such overheads, but … increased thread idle times and
 load imbalances."

The optimum always yields 8–511 blocks per dimension, so candidate
selection reduces to six buckets: 8–15, 16–31, 32–63, 64–127, 128–255,
256–511.  The practical rule of thumb: 32–63 on Broadwell and 64–127 on
EPYC for DeepSparse and HPX; 16–31 for Regent on both.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

__all__ = [
    "BLOCK_COUNT_BUCKETS",
    "bucket_of_count",
    "block_size_for_count",
    "candidate_block_sizes",
    "recommend_block_count",
    "sweep_block_counts",
    "sweep_block_sizes",
]

#: The six block-count buckets of §5.4, as inclusive (lo, hi) ranges.
BLOCK_COUNT_BUCKETS: List[Tuple[int, int]] = [
    (8, 15), (16, 31), (32, 63), (64, 127), (128, 255), (256, 511),
]

#: Paper rule of thumb: preferred bucket per (runtime, machine).
RULE_OF_THUMB: Dict[Tuple[str, str], Tuple[int, int]] = {
    ("deepsparse", "broadwell"): (32, 63),
    ("deepsparse", "epyc"): (64, 127),
    ("hpx", "broadwell"): (64, 127),
    ("hpx", "epyc"): (64, 127),
    ("regent", "broadwell"): (16, 31),
    ("regent", "epyc"): (16, 31),
}


def bucket_of_count(block_count: int) -> Tuple[int, int]:
    """The §5.4 bucket containing a block count.

    Raises ``ValueError`` outside 8–511 — the paper's observation is
    precisely that optima never fall outside this range.
    """
    for lo, hi in BLOCK_COUNT_BUCKETS:
        if lo <= block_count <= hi:
            return (lo, hi)
    raise ValueError(
        f"block count {block_count} outside the 8-511 range of §5.4"
    )


def block_size_for_count(nrows: int, block_count: int) -> int:
    """CSB block size giving ``block_count`` blocks per dimension."""
    if block_count <= 0:
        raise ValueError("block_count must be positive")
    return max(1, -(-nrows // block_count))


def candidate_block_sizes(nrows: int) -> Dict[Tuple[int, int], int]:
    """One representative block size per bucket (bucket midpoint).

    This is the six-candidate search the heuristic reduces tuning to.
    """
    out = {}
    for lo, hi in BLOCK_COUNT_BUCKETS:
        mid = (lo + hi) // 2
        if mid >= nrows:  # degenerate for tiny matrices
            continue
        out[(lo, hi)] = block_size_for_count(nrows, mid)
    return out


def recommend_block_count(runtime: str, machine: str) -> Tuple[int, int]:
    """The paper's rule-of-thumb bucket for a runtime/architecture pair."""
    try:
        return RULE_OF_THUMB[(runtime, machine)]
    except KeyError:
        raise KeyError(
            f"no rule of thumb for ({runtime!r}, {machine!r}); known: "
            f"{sorted(RULE_OF_THUMB)}"
        ) from None


def sweep_block_sizes(
    nrows: int,
    run_at: Callable[[int], float],
    buckets=None,
) -> Dict[Tuple[int, int], float]:
    """Evaluate ``run_at(block_size) -> time`` for each bucket candidate.

    Returns bucket → execution time; the caller picks the argmin (and
    feeds the table to :func:`repro.tuning.profiles.performance_profiles`).
    """
    cands = candidate_block_sizes(nrows)
    if buckets is not None:
        cands = {b: s for b, s in cands.items() if b in buckets}
    return {bucket: run_at(size) for bucket, size in cands.items()}


def sweep_block_counts(
    machine: str,
    matrix: str,
    solver: str,
    version: str,
    iterations: int = 1,
    buckets=None,
    runner=None,
) -> Dict[Tuple[int, int], float]:
    """Bucket → simulated seconds/iteration for one evaluation cell.

    The paper-scale realization of :func:`sweep_block_sizes`: each
    bucket's midpoint block count is simulated through the experiment
    orchestrator (:class:`repro.bench.runner.ExperimentRunner`), so
    sweep cells are deduplicated, persisted in the on-disk result
    cache, and optionally fanned out over worker processes.  A repeat
    sweep — or one whose cells any figure already ran — costs only
    JSON reads.
    """
    from repro.bench.runner import Cell, ExperimentRunner
    from repro.matrices.suite import SUITE

    nrows = SUITE[matrix].paper_rows
    cands = candidate_block_sizes(nrows)
    if buckets is not None:
        cands = {b: s for b, s in cands.items() if b in buckets}
    chosen = list(cands)
    if runner is None:
        runner = ExperimentRunner()
    cells = [
        Cell(machine=machine, matrix=matrix, solver=solver,
             version=version, block_count=(lo + hi) // 2,
             iterations=iterations)
        for lo, hi in chosen
    ]
    results = runner.run_cells(cells)
    return {
        bucket: res.time_per_iteration
        for bucket, res in zip(chosen, results)
    }
