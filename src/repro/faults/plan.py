"""Fault-plan vocabulary and the deterministic decision hash.

A :class:`FaultPlan` is a frozen value: a set of injections plus an
integer seed.  Every stochastic decision downstream — which core a
``"random"`` selector resolves to, whether a given task attempt fails —
is drawn from :func:`fault_hash`, a keyed blake2b digest of the plan
seed and the decision coordinates.  No RNG object is threaded through
the engines, so the outcome is independent of process, platform,
``PYTHONHASHSEED``, and the order in which decisions happen to be
asked for.

Fault *timing* is expressed in solver iterations ("cycles" in the
issue's vocabulary): onsets and core deaths take effect at the
iteration barrier, which is where real runtimes detect lane loss
(heartbeat timeout at the reduction) and where the simulation has a
well-defined global state.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

__all__ = [
    "CoreLoss",
    "FaultPlan",
    "SlowCore",
    "TaskFaults",
    "fault_hash",
]


def fault_hash(seed: int, *coords: Union[int, str]) -> float:
    """Deterministic u01 draw for the decision named by ``coords``.

    blake2b is stable across platforms and Python versions and is not
    affected by hash randomization, unlike ``hash()``.  The 8-byte
    digest gives 64 bits of uniformity — far more than any retry
    budget or core count needs.
    """
    key = ":".join(str(c) for c in (seed, *coords))
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


# Core selectors understood by MachineSpec.select_cores:
#   an int        -> that core id
#   "first"/"last" -> core 0 / core n-1
#   "random"      -> fault_hash-chosen core
#   "domain:<d>"  -> every core of NUMA domain d
#   "socket:<s>"  -> every core of socket s
Selector = Union[int, str]


@dataclass(frozen=True)
class SlowCore:
    """A core (or core group) running at ``factor``x its nominal time.

    ``factor`` multiplies the *compute* component of every task charge
    on the affected core (frequency derate: memory stalls are set by
    the uncore/DRAM and do not slow down with the core clock), plus
    the per-task scheduler overhead, which is core-clock-bound work.
    ``onset`` is the first iteration the derate applies; 0 means the
    core is slow from the start, a positive value models a straggler
    appearing mid-run (thermal throttling, a noisy neighbour).
    """

    selector: Selector = "random"
    factor: float = 2.0
    onset: int = 0

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(f"derate factor must be >= 1.0, got {self.factor}")
        if self.onset < 0:
            raise ValueError(f"onset must be >= 0, got {self.onset}")


@dataclass(frozen=True)
class CoreLoss:
    """A core (or core group) dies at the start of iteration ``at``.

    The loss takes effect at the iteration barrier: from iteration
    ``at`` onward the lane accepts no work.  How the *remaining* cores
    absorb its share is each runtime's recovery policy (see
    ``repro.faults.report.RECOVERY_POLICIES``).
    """

    selector: Selector = "random"
    at: int = 1

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"loss iteration must be >= 0, got {self.at}")


@dataclass(frozen=True)
class TaskFaults:
    """Transient task faults: a result is poisoned and re-executed.

    Each execution attempt of each task fails independently with
    probability ``rate`` (decided by ``fault_hash(seed, it, tid,
    attempt)``).  A failed attempt is retried up to ``budget`` times;
    every retry re-charges the full task cost and adds exponential
    backoff ``backoff * 2**attempt`` to the simulated clock of the
    core that re-executes it.  A task that exhausts its budget is
    *abandoned* (counted in the fault report) — its value is still
    produced so the DAG completes, modeling a solver that falls back
    to the stale iterate for that block.
    """

    rate: float = 0.01
    budget: int = 3
    backoff: float = 5e-6

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"fault rate must be in [0, 1), got {self.rate}")
        if self.budget < 0:
            raise ValueError(f"retry budget must be >= 0, got {self.budget}")
        if self.backoff < 0.0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded, frozen set of fault injections.

    The plan is machine-agnostic: selectors are resolved against a
    concrete :class:`~repro.machine.topology.MachineSpec` only when
    :meth:`state` builds the per-run :class:`~repro.faults.state.FaultState`.
    The same plan can therefore be swept across machines while keeping
    the *decision stream* (which attempts fail, which "random" draw is
    used) tied solely to ``seed``.
    """

    spec: str = "none"
    seed: int = 0
    slow: Tuple[SlowCore, ...] = ()
    losses: Tuple[CoreLoss, ...] = ()
    task_faults: Optional[TaskFaults] = None

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from the named-spec registry (see specs.py)."""
        from repro.faults.specs import make_plan

        return make_plan(spec, seed)

    @property
    def is_empty(self) -> bool:
        return not self.slow and not self.losses and self.task_faults is None

    def state(self, machine) -> Optional["FaultState"]:  # noqa: F821
        """Resolve the plan against a machine into a per-run FaultState.

        Returns ``None`` for an empty plan so callers can guard the
        whole fault path behind ``if fs is not None`` and keep the
        healthy hot loop untouched (bit-identical by construction).
        """
        if self.is_empty:
            return None
        from repro.faults.state import FaultState

        return FaultState(self, machine)

    def to_dict(self) -> dict:
        d = {
            "spec": self.spec,
            "seed": self.seed,
            "slow": [
                {"selector": s.selector, "factor": s.factor, "onset": s.onset}
                for s in self.slow
            ],
            "losses": [{"selector": l.selector, "at": l.at} for l in self.losses],
        }
        if self.task_faults is not None:
            tf = self.task_faults
            d["task_faults"] = {
                "rate": tf.rate,
                "budget": tf.budget,
                "backoff": tf.backoff,
            }
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        tf = d.get("task_faults")
        return cls(
            spec=d.get("spec", "none"),
            seed=int(d.get("seed", 0)),
            slow=tuple(
                SlowCore(s["selector"], s["factor"], s["onset"])
                for s in d.get("slow", ())
            ),
            losses=tuple(
                CoreLoss(l["selector"], l["at"]) for l in d.get("losses", ())
            ),
            task_faults=TaskFaults(tf["rate"], tf["budget"], tf["backoff"])
            if tf
            else None,
        )
