"""Per-run fault outcome: what was injected, what it cost, how the
runtime recovered.

The report is a plain serializable value attached to ``RunResult`` /
``RunResultSummary`` as ``fault_report`` — absent (None) on healthy
runs so existing artifacts and cache entries keep their shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["RECOVERY_POLICIES", "FaultReport"]


# How each simulated runtime absorbs a lost lane.  These mirror the
# documented behaviour of the real systems the paper measures:
#
# * DeepSparse's persistent workers own LIFO deques and steal from the
#   deepest deque when theirs runs dry (paper §3.1 / SparseML runtime
#   notes) — a dead lane's share is drained by its peers with no
#   central action.
# * HPX schedulers keep per-NUMA-domain ready queues with work
#   requesting across domains (HPX docs, thread-scheduling policies;
#   "Quantifying Overheads in Charm++ and HPX using Task Bench") — on
#   lane loss its queue is redistributed, falling back to the nearest
#   live domain when the NUMA hint can no longer be honoured.
# * Regent/Legion dedicates utility cores to the mapper/runtime
#   (Legion mapper interface docs) — a lost worker lane is replaced by
#   promoting a utility core into the worker pool, trading runtime
#   headroom for restored width.
# * The BSP baselines (libcsr/libcsb) have no runtime: a dead lane's
#   phase share simply never arrives at the barrier, modeling the
#   no-recovery worst case (the iteration stalls until the share is
#   re-run serially).
RECOVERY_POLICIES = {
    "deepsparse": "work stealing drains the dead lane's deque",
    "hpx": "ready-queue redistribution with NUMA-hint fallback",
    "regent": "utility-core promotion restores worker width",
    "libcsr": "none: barrier stalls, dead lane's share re-run serially",
    "libcsb": "none: barrier stalls, dead lane's share re-run serially",
    "bsp": "none: barrier stalls, dead lane's share re-run serially",
}


@dataclass
class FaultReport:
    """Serializable summary of one faulted run.

    ``core_losses`` rows are ``[core, at, recovery_latency]`` where the
    latency is the extra time the death iteration took versus the
    iteration immediately before it (None when the death happened at
    iteration 0 or past the end of the run) — a direct measure of how
    gracefully the runtime absorbed the loss.
    """

    spec: str = "none"
    seed: int = 0
    policy: str = ""
    slow_cores: List[List[float]] = field(default_factory=list)
    core_losses: List[List[Optional[float]]] = field(default_factory=list)
    retries: int = 0
    abandoned: int = 0
    re_executed_time: float = 0.0
    backoff_time: float = 0.0
    slow_time: float = 0.0
    stall_time: float = 0.0

    @property
    def recovery_latency(self) -> Optional[float]:
        """Worst recovery latency across all core losses, if measurable."""
        latencies = [row[2] for row in self.core_losses if row[2] is not None]
        return max(latencies) if latencies else None

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "seed": self.seed,
            "policy": self.policy,
            "slow_cores": [list(r) for r in self.slow_cores],
            "core_losses": [list(r) for r in self.core_losses],
            "retries": self.retries,
            "abandoned": self.abandoned,
            "re_executed_time": self.re_executed_time,
            "backoff_time": self.backoff_time,
            "slow_time": self.slow_time,
            "stall_time": self.stall_time,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultReport":
        return cls(
            spec=d.get("spec", "none"),
            seed=int(d.get("seed", 0)),
            policy=d.get("policy", ""),
            slow_cores=[list(r) for r in d.get("slow_cores", ())],
            core_losses=[list(r) for r in d.get("core_losses", ())],
            retries=int(d.get("retries", 0)),
            abandoned=int(d.get("abandoned", 0)),
            re_executed_time=float(d.get("re_executed_time", 0.0)),
            backoff_time=float(d.get("backoff_time", 0.0)),
            slow_time=float(d.get("slow_time", 0.0)),
            stall_time=float(d.get("stall_time", 0.0)),
        )
