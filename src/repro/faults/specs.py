"""Named fault-spec registry.

A spec is a reusable recipe; combined with an integer seed it yields a
fully reproducible :class:`~repro.faults.plan.FaultPlan`.  The names
here are the vocabulary of ``repro chaos --spec`` and of the
fault-sweep cell in the perf guard, so changing a recipe changes
recorded numbers — add new names instead of editing existing ones.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.faults.plan import CoreLoss, FaultPlan, SlowCore, TaskFaults

__all__ = ["FAULT_SPECS", "make_plan"]


def _none(seed: int) -> FaultPlan:
    return FaultPlan(spec="none", seed=seed)


def _slow_core(seed: int) -> FaultPlan:
    return FaultPlan(
        spec="slow-core",
        seed=seed,
        slow=(SlowCore(selector="random", factor=2.5, onset=0),),
    )


def _straggler(seed: int) -> FaultPlan:
    return FaultPlan(
        spec="straggler",
        seed=seed,
        slow=(SlowCore(selector="random", factor=3.0, onset=2),),
    )


def _core_loss(seed: int) -> FaultPlan:
    return FaultPlan(
        spec="core-loss",
        seed=seed,
        losses=(CoreLoss(selector="random", at=2),),
    )


def _domain_loss(seed: int) -> FaultPlan:
    return FaultPlan(
        spec="domain-loss",
        seed=seed,
        losses=(CoreLoss(selector="domain:0", at=2),),
    )


def _flaky_tasks(seed: int) -> FaultPlan:
    return FaultPlan(
        spec="flaky-tasks",
        seed=seed,
        task_faults=TaskFaults(rate=0.05, budget=3, backoff=5e-6),
    )


def _chaos(seed: int) -> FaultPlan:
    return FaultPlan(
        spec="chaos",
        seed=seed,
        slow=(SlowCore(selector="random", factor=2.5, onset=1),),
        losses=(CoreLoss(selector="random", at=2),),
        task_faults=TaskFaults(rate=0.02, budget=3, backoff=5e-6),
    )


FAULT_SPECS: Dict[str, Callable[[int], FaultPlan]] = {
    "none": _none,
    "slow-core": _slow_core,
    "straggler": _straggler,
    "core-loss": _core_loss,
    "domain-loss": _domain_loss,
    "flaky-tasks": _flaky_tasks,
    "chaos": _chaos,
}


def make_plan(spec: str, seed: int = 0) -> FaultPlan:
    try:
        factory = FAULT_SPECS[spec]
    except KeyError:
        known = ", ".join(sorted(FAULT_SPECS))
        raise ValueError(f"unknown fault spec {spec!r} (known: {known})") from None
    return factory(seed)
