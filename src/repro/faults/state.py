"""Per-run mutable fault state threaded through the engines.

A :class:`FaultState` is built by ``FaultPlan.state(machine)`` at the
start of a run: selectors are resolved to concrete core ids, and the
engines then consult it at every iteration barrier
(:meth:`begin_iteration`) and, for task faults, at every task
completion (:meth:`task_fails`).  All accounting the engines charge to
the simulated clock is mirrored here so :meth:`finalize` can emit the
:class:`~repro.faults.report.FaultReport`.

Every decision is a pure function of the plan seed and the decision
coordinates (via :func:`~repro.faults.plan.fault_hash`), so two runs
of the same plan on the same inputs are bit-identical regardless of
process or platform.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan, fault_hash
from repro.faults.report import RECOVERY_POLICIES, FaultReport

__all__ = ["FaultState"]


class FaultState:
    def __init__(self, plan: FaultPlan, machine) -> None:
        self.plan = plan
        self.machine = machine
        n = machine.n_cores

        # Resolve slow-core selectors.  core -> (factor, onset); a core
        # named twice keeps the harsher (larger) factor.
        self._slow: Dict[int, Tuple[float, int]] = {}
        for i, s in enumerate(plan.slow):
            for core in machine.select_cores(s.selector, plan.seed, f"slow:{i}"):
                prev = self._slow.get(core)
                if prev is None or s.factor > prev[0]:
                    self._slow[core] = (s.factor, s.onset)

        # Resolve core-loss selectors.  core -> death iteration; a core
        # named twice dies at the earlier iteration.
        self._loss_at: Dict[int, int] = {}
        for i, l in enumerate(plan.losses):
            for core in machine.select_cores(l.selector, plan.seed, f"loss:{i}"):
                prev = self._loss_at.get(core)
                if prev is None or l.at < prev:
                    self._loss_at[core] = l.at

        if len(self._loss_at) >= n:
            raise ValueError(
                f"fault plan {plan.spec!r} (seed {plan.seed}) kills all "
                f"{n} cores; at least one must survive"
            )

        tf = plan.task_faults
        self.rate = tf.rate if tf is not None else 0.0
        self.budget = tf.budget if tf is not None else 0
        self._backoff_base = tf.backoff if tf is not None else 0.0

        # Current-iteration view, refreshed by begin_iteration().
        self._it = -1
        self._dead: set = set()
        self._factors: Optional[Tuple[float, ...]] = None

        # Accounting (mirrors what the engines charge to the clock).
        self.retries = 0
        self.abandoned = 0
        self.re_executed_time = 0.0
        self.backoff_time = 0.0
        self.slow_time = 0.0
        self.stall_time = 0.0

    # ------------------------------------------------------------------
    # Iteration-barrier protocol
    # ------------------------------------------------------------------
    def begin_iteration(self, it: int) -> Tuple[List[int], List[int]]:
        """Advance to iteration ``it``; return (newly dead, newly slow).

        Deaths and straggler onsets take effect at the barrier, so the
        engines call this once per iteration before releasing sources.
        """
        newly_dead = sorted(
            c for c, at in self._loss_at.items() if at == it
        ) if it >= 0 else []
        newly_slow = sorted(
            c
            for c, (_, onset) in self._slow.items()
            if onset == it and c not in self._loss_at
        )
        self._it = it
        self._dead = {c for c, at in self._loss_at.items() if at <= it}
        n = self.machine.n_cores
        factors = [1.0] * n
        active = False
        for c, (factor, onset) in self._slow.items():
            if onset <= it and c not in self._dead:
                factors[c] = factor
                active = True
        self._factors = tuple(factors) if active else None
        return newly_dead, newly_slow

    def dead(self, core: int) -> bool:
        return core in self._dead

    @property
    def dead_cores(self) -> set:
        return self._dead

    @property
    def derates(self) -> Optional[Tuple[float, ...]]:
        """Per-core derate factors for the current iteration, or None."""
        return self._factors

    def factor(self, core: int) -> float:
        return self._factors[core] if self._factors is not None else 1.0

    @property
    def recovery_core(self) -> int:
        """Lowest core id that survives every planned loss.

        The BSP baselines re-run a dead lane's deferred share here.
        """
        for c in range(self.machine.n_cores):
            if c not in self._loss_at:
                return c
        raise AssertionError("unreachable: validated at construction")

    # ------------------------------------------------------------------
    # Task-fault protocol
    # ------------------------------------------------------------------
    def task_fails(self, it: int, tid: int, attempt: int) -> bool:
        if self.rate <= 0.0:
            return False
        return fault_hash(self.plan.seed, "task", it, tid, attempt) < self.rate

    def backoff_seconds(self, attempt: int) -> float:
        return self._backoff_base * (2.0**attempt)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def finalize(
        self, runtime_name: str, iteration_times: Tuple[float, ...]
    ) -> FaultReport:
        """Build the FaultReport for a finished run.

        ``iteration_times`` are the per-iteration wall-clock durations
        the engine recorded.  The recovery latency of a loss at
        iteration ``at`` is the slowdown of that iteration relative to
        the one before it — how much the barrier slipped while the
        runtime absorbed the loss.  It is None when the loss hit
        iteration 0 (no healthy baseline) or fell past the end of the
        run (never took effect).
        """
        core_losses: List[List[Optional[float]]] = []
        for core in sorted(self._loss_at):
            at = self._loss_at[core]
            latency: Optional[float] = None
            if 0 < at < len(iteration_times):
                latency = iteration_times[at] - iteration_times[at - 1]
            core_losses.append([core, at, latency])
        slow_cores = [
            [core, factor, onset]
            for core, (factor, onset) in sorted(self._slow.items())
        ]
        return FaultReport(
            spec=self.plan.spec,
            seed=self.plan.seed,
            policy=RECOVERY_POLICIES.get(runtime_name, ""),
            slow_cores=slow_cores,
            core_losses=core_losses,
            retries=self.retries,
            abandoned=self.abandoned,
            re_executed_time=self.re_executed_time,
            backoff_time=self.backoff_time,
            slow_time=self.slow_time,
            stall_time=self.stall_time,
        )
