"""Deterministic fault injection for the simulated runtimes.

The paper evaluates the runtimes on a healthy machine; this package
adds the degraded-machine axis: frequency-derated (slow) cores, cores
that die outright at an iteration barrier, and transient task faults
that force re-execution with backoff.  Everything is derived from a
:class:`FaultPlan` — a frozen value built from a named spec plus an
integer seed — so a faulted run is exactly as reproducible as a
healthy one: the same plan produces bit-identical results across
processes and platforms.

* :mod:`repro.faults.plan` — the plan vocabulary (:class:`SlowCore`,
  :class:`CoreLoss`, :class:`TaskFaults`, :class:`FaultPlan`) and the
  deterministic hash every stochastic decision is drawn from.
* :mod:`repro.faults.specs` — the named spec registry behind
  ``FaultPlan.from_spec`` and the ``repro chaos`` CLI.
* :mod:`repro.faults.state` — :class:`FaultState`, the per-run mutable
  companion the engines thread through their event loops.
* :mod:`repro.faults.report` — :class:`FaultReport`, the serializable
  per-run outcome surfaced as ``RunResult.fault_report``.

Attaching an *empty* plan is indistinguishable from attaching none:
``FaultPlan.state`` returns ``None`` and the engines take their
unmodified (bit-identical) hot paths.
"""

from repro.faults.plan import (
    CoreLoss,
    FaultPlan,
    SlowCore,
    TaskFaults,
    fault_hash,
)
from repro.faults.report import RECOVERY_POLICIES, FaultReport
from repro.faults.specs import FAULT_SPECS, make_plan
from repro.faults.state import FaultState

__all__ = [
    "CoreLoss",
    "FAULT_SPECS",
    "FaultPlan",
    "FaultReport",
    "FaultState",
    "RECOVERY_POLICIES",
    "SlowCore",
    "TaskFaults",
    "fault_hash",
    "make_plan",
]
