"""DeepSparse: OpenMP tasking over the explicitly generated TDG (§3.1).

The PCU front end lives in :mod:`repro.graph` (trace → TDGG); this
class is the Task Executor analogue: it spawns the DAG's tasks in
depth-first topological order and lets the OpenMP-style scheduler run
them, with the cache-affinity preference that gives DeepSparse its
pipelined execution profile.
"""

from __future__ import annotations

from repro.graph.builder import BuildOptions
from repro.machine.topology import MachineSpec
from repro.runtime.base import Runtime
from repro.sim.engine import RunResult, SimulationEngine
from repro.sim.schedulers import DeepSparseScheduler

__all__ = ["DeepSparseRuntime"]


class DeepSparseRuntime(Runtime):
    """OpenMP-task execution of the DeepSparse TDG."""

    name = "deepsparse"
    default_options = BuildOptions(skip_empty=True, spmm_mode="dependency")

    def __init__(
        self,
        machine: MachineSpec,
        first_touch: bool = True,
        seed: int = 0,
        options: BuildOptions = None,
        overhead_per_task: float = 0.35e-6,
        spawn_cost: float = 0.15e-6,
    ):
        super().__init__(machine, first_touch, seed, options)
        self.overhead_per_task = overhead_per_task
        self.spawn_cost = spawn_cost

    def make_scheduler(self) -> DeepSparseScheduler:
        return DeepSparseScheduler(
            overhead_per_task=self.overhead_per_task,
            spawn_cost=self.spawn_cost,
        )

    def execute(self, dag, iterations: int = 1, tracer=None,
                faults=None) -> RunResult:
        engine = SimulationEngine(
            self.machine, first_touch=self.first_touch, seed=self.seed
        )
        return engine.run(dag, self.make_scheduler(),
                          iterations=iterations, tracer=tracer,
                          faults=faults)
