"""Regent-style logical regions, partitions, and privileges (Listing 3).

Regent programs look sequential: the programmer declares, per task,
*privileges* on the regions it takes (``reads``, ``writes``,
``reads writes``, ``reduces``), and the runtime extracts parallelism by
interference analysis.  This module reproduces that model:

* :class:`Region` — a named array; :meth:`Region.partition` splits it
  into disjoint row subregions (``partition(equal, ...)``).
* :func:`task` — decorator declaring privileges by parameter name.
* :class:`RegionRuntime` — records task launches sequentially, runs
  Legion's non-interference rules (read–read and reduce–reduce
  commute; anything involving a write conflicts; reduce conflicts with
  read and write), and executes the resulting DAG, serially or on a
  thread pool.  :meth:`RegionRuntime.index_launch` launches a loop of
  tasks as one batch (``__demand(__index_launch)``).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["Region", "Partition", "task", "RegionRuntime", "Privilege"]


class Privilege:
    READ = "read"
    WRITE = "write"
    READ_WRITE = "read_write"
    REDUCE = "reduce"


def _conflicts(a: str, b: str) -> bool:
    """Legion non-interference: RR and ++ commute, everything else doesn't."""
    if a == Privilege.READ and b == Privilege.READ:
        return False
    if a == Privilege.REDUCE and b == Privilege.REDUCE:
        return False
    return True


class Region:
    """A logical region: a named NumPy array, possibly a subregion view.

    Subregions remember their root and row interval so the runtime can
    test disjointness.
    """

    _next_root = 0

    def __init__(self, data: np.ndarray, name: str = None,
                 _root: int = None, _interval: Tuple[int, int] = None):
        self.data = np.asarray(data)
        self.name = name or f"region{Region._next_root}"
        if _root is None:
            self.root = Region._next_root
            Region._next_root += 1
            self.interval = (0, self.data.shape[0])
        else:
            self.root = _root
            self.interval = _interval

    def partition(self, n_parts: int) -> "Partition":
        """``partition(equal, region, ispace(n_parts))``."""
        return Partition(self, n_parts)

    def __repr__(self):
        return f"Region({self.name}, rows {self.interval})"


class Partition:
    """Disjoint equal row partition of a region into subregion views."""

    def __init__(self, region: Region, n_parts: int):
        if n_parts <= 0:
            raise ValueError("n_parts must be positive")
        self.region = region
        self.n_parts = n_parts
        m = region.data.shape[0]
        b = -(-m // n_parts)
        self.subregions: List[Region] = []
        base = region.interval[0]
        for i in range(n_parts):
            s, e = min(i * b, m), min((i + 1) * b, m)
            self.subregions.append(
                Region(
                    region.data[s:e],
                    name=f"{region.name}[{i}]",
                    _root=region.root,
                    _interval=(base + s, base + e),
                )
            )

    def __getitem__(self, i: int) -> Region:
        return self.subregions[i]

    def __len__(self):
        return self.n_parts

    def __iter__(self):
        return iter(self.subregions)


def task(**privileges):
    """Declare region privileges by parameter name.

    Example::

        @task(rA="read", rX="read", rY="read_write")
        def spmm(rA, rX, rY, s, e):
            ...
    """
    valid = {Privilege.READ, Privilege.WRITE, Privilege.READ_WRITE,
             Privilege.REDUCE}

    def deco(fn):
        for pname, priv in privileges.items():
            if priv not in valid:
                raise ValueError(
                    f"invalid privilege {priv!r} on parameter {pname!r}"
                )
        fn.__privileges__ = dict(privileges)
        return fn

    return deco


@dataclass
class _Launch:
    """One recorded task launch."""

    lid: int
    fn: object
    args: tuple
    kwargs: dict
    accesses: List[Tuple[int, int, int, str]]  # (root, lo, hi, privilege)


class RegionRuntime:
    """Sequential-semantics task launcher with implicit parallelism.

    Launches are recorded (not executed); :meth:`execute` runs them
    respecting discovered dependences.  The analysis is the runtime's
    serial bottleneck in real Legion — its cost model in the simulator
    mirrors that; here it is exact and observable via
    :attr:`dependence_edges`.
    """

    def __init__(self):
        self._launches: List[_Launch] = []
        self.dependence_edges: List[Tuple[int, int]] = []
        # access history per root: list of (launch id, lo, hi, privilege)
        self._history: Dict[int, List[Tuple[int, int, int, str]]] = {}

    # ------------------------------------------------------------------
    def launch(self, fn, *args, **kwargs) -> int:
        """Record one task launch; returns its launch id."""
        privs = getattr(fn, "__privileges__", None)
        if privs is None:
            raise TypeError(
                f"{fn!r} is not a task: decorate it with @task(...)"
            )
        import inspect

        bound = inspect.signature(fn).bind(*args, **kwargs)
        accesses = []
        for pname, priv in privs.items():
            r = bound.arguments.get(pname)
            if not isinstance(r, Region):
                raise TypeError(
                    f"parameter {pname!r} of {fn.__name__} must be a Region"
                )
            accesses.append((r.root, r.interval[0], r.interval[1], priv))
        lid = len(self._launches)
        launch = _Launch(lid, fn, args, kwargs, accesses)
        self._launches.append(launch)
        # Dependence analysis against history.
        deps = set()
        for root, lo, hi, priv in accesses:
            for (olid, olo, ohi, opriv) in self._history.get(root, ()):
                if olo < hi and lo < ohi and _conflicts(priv, opriv):
                    deps.add(olid)
            self._history.setdefault(root, []).append((lid, lo, hi, priv))
        for d in sorted(deps):
            self.dependence_edges.append((d, lid))
        return lid

    def index_launch(self, n: int, fn, arg_fn) -> List[int]:
        """Launch ``fn(*arg_fn(i))`` for ``i in range(n)`` as one batch.

        The tasks must be non-interfering (that is the contract of
        ``__demand(__index_launch)``); this is verified, and a
        ``ValueError`` is raised if any two batch members conflict —
        exactly what the Regent compiler rejects statically.
        """
        start = len(self._launches)
        lids = [self.launch(fn, *arg_fn(i)) for i in range(n)]
        for (u, v) in self.dependence_edges:
            if u >= start and v >= start:
                raise ValueError(
                    "index_launch tasks interfere: "
                    f"launch {u} conflicts with launch {v}"
                )
        return lids

    # ------------------------------------------------------------------
    def execute(self, n_threads: Optional[int] = None) -> None:
        """Run all recorded launches, honouring dependences.

        ``n_threads=None`` executes serially in launch order (always
        legal); otherwise a pool executes ready tasks concurrently.
        Clears the launch log afterwards so the runtime can be reused.
        """
        if n_threads is None:
            for l in self._launches:
                l.fn(*l.args, **l.kwargs)
        else:
            self._execute_parallel(n_threads)
        self._launches = []
        self.dependence_edges = []
        self._history = {}

    def _execute_parallel(self, n_threads: int) -> None:
        n = len(self._launches)
        succ: List[List[int]] = [[] for _ in range(n)]
        indeg = [0] * n
        for (u, v) in self.dependence_edges:
            succ[u].append(v)
            indeg[v] += 1
        lock = threading.Lock()
        done = threading.Event()
        remaining = n
        if remaining == 0:
            return
        errors: List[BaseException] = []
        pool = ThreadPoolExecutor(max_workers=n_threads)

        def submit(lid):
            pool.submit(body, lid)

        def body(lid):
            nonlocal remaining
            l = self._launches[lid]
            try:
                l.fn(*l.args, **l.kwargs)
            except BaseException as exc:
                with lock:
                    errors.append(exc)
                    done.set()
                return
            ready = []
            with lock:
                remaining -= 1
                if remaining == 0:
                    done.set()
                for v in succ[lid]:
                    indeg[v] -= 1
                    if indeg[v] == 0:
                        ready.append(v)
            for v in ready:
                submit(v)

        # Snapshot sources first: reading indeg live while workers
        # decrement it would double-submit freshly-enabled launches.
        sources = [lid for lid in range(n) if indeg[lid] == 0]
        for lid in sources:
            submit(lid)
        done.wait()
        pool.shutdown(wait=True)
        if errors:
            raise errors[0]
