"""BSP library baselines: ``libcsr`` and ``libcsb``.

Both execute every kernel as a fork-join parallel phase with a closing
barrier.  The difference is storage/granularity:

* **libcsr** partitions work as a thread-parallel MKL call would — one
  contiguous row chunk per core (coarse grains that overflow the LLC,
  the cache behaviour the paper attributes BSP's losses to).  Use
  :func:`libcsr_partitions` to get the matching block size.
* **libcsb** keeps the CSB tiling (same DAG as the AMT versions) but
  still executes phase-by-phase — isolating the storage-format effect
  from the scheduling effect (the paper uses it exactly this way in
  Fig. 8's L2 discussion).
"""

from __future__ import annotations

from repro.graph.builder import BuildOptions
from repro.machine.topology import MachineSpec
from repro.runtime.base import Runtime
from repro.sim.engine import RunResult, run_bsp

__all__ = ["BSPRuntime", "libcsr_partitions"]


def libcsr_partitions(machine: MachineSpec, nrows: int) -> int:
    """Block size giving one row chunk per core (the libcsr grain)."""
    return max(1, -(-nrows // machine.n_cores))


class BSPRuntime(Runtime):
    """Fork-join executor for the library baselines.

    Parameters
    ----------
    flavor:
        ``"libcsr"`` or ``"libcsb"`` — a label plus the expectation
        that the caller built the DAG at the matching granularity
        (one chunk per core for libcsr, CSB block size for libcsb).
    """

    default_options = BuildOptions(skip_empty=True, spmm_mode="dependency")

    def __init__(
        self,
        machine: MachineSpec,
        flavor: str = "libcsr",
        first_touch: bool = True,
        seed: int = 0,
        options: BuildOptions = None,
    ):
        if flavor not in ("libcsr", "libcsb", "bsp"):
            raise ValueError(f"unknown BSP flavor {flavor!r}")
        if options is None and flavor == "libcsr":
            # CSR storage: unrestricted gather span, and MKL spawns the
            # loop body for every row chunk (no empty-block skipping).
            options = BuildOptions(skip_empty=False, csr_storage=True)
        super().__init__(machine, first_touch, seed, options)
        self.flavor = flavor
        self.name = flavor

    def execute(self, dag, iterations: int = 1, tracer=None,
                faults=None) -> RunResult:
        return run_bsp(
            self.machine,
            dag,
            iterations=iterations,
            first_touch=self.first_touch,
            flavor=self.flavor,
            tracer=tracer,
            faults=faults,
        )
