"""Runtime systems: the four solver versions of the paper.

* :class:`~repro.runtime.bsp.BSPRuntime` — fork-join library baseline
  (``libcsr`` at one row chunk per core, ``libcsb`` at the CSB block
  size).
* :class:`~repro.runtime.deepsparse.DeepSparseRuntime` — OpenMP tasking
  driven by DeepSparse's explicitly generated TDG.
* :class:`~repro.runtime.hpx.HPXRuntime` — future/dataflow execution
  with NUMA-aware scheduling hints.
* :class:`~repro.runtime.regent.RegentRuntime` — region/privilege
  dependence analysis with reserved utility cores.

Each runtime takes the same task DAG (or builds it with its preferred
options) and executes it on a simulated machine, returning a
:class:`~repro.sim.engine.RunResult`.

Two additional modules reproduce the paper's *programming models* on
real threads: :mod:`repro.runtime.futures` is an HPX-style
``async``/``dataflow`` API (Listing 2) and :mod:`repro.runtime.regions`
is a Regent-style region/privilege API (Listing 3); both are exercised
by the examples and by :class:`~repro.runtime.threaded.ThreadedRuntime`
tests for numerical equivalence with the eager solvers.
"""

from repro.runtime.base import Runtime, build_solver_dag
from repro.runtime.bsp import BSPRuntime, libcsr_partitions
from repro.runtime.deepsparse import DeepSparseRuntime
from repro.runtime.hpx import HPXRuntime
from repro.runtime.regent import RegentRuntime
from repro.runtime.futures import Future, async_run, dataflow, unwrapping
from repro.runtime.regions import Region, Partition, task, RegionRuntime
from repro.runtime.threaded import ThreadedRuntime, execute_dag_serial

__all__ = [
    "Runtime",
    "build_solver_dag",
    "BSPRuntime",
    "libcsr_partitions",
    "DeepSparseRuntime",
    "HPXRuntime",
    "RegentRuntime",
    "Future",
    "async_run",
    "dataflow",
    "unwrapping",
    "Region",
    "Partition",
    "task",
    "RegionRuntime",
    "ThreadedRuntime",
    "execute_dag_serial",
]
