"""HPX-style futures and dataflow on real threads (Listing 2).

The paper's HPX implementation hangs every chunk of every operand on a
``shared_future`` and chains kernels with ``hpx::dataflow``.  This
module reproduces that programming model over a thread pool:

* :func:`async_run` — schedule a function, get a :class:`Future`.
* :func:`dataflow` — schedule a function to fire when all of its
  future arguments are ready (non-future arguments pass through).
* :func:`unwrapping` — wrap a plain function so it receives ready
  values rather than futures, as ``hpx::util::unwrapping`` does.
* :func:`make_ready_future` — a future that is already satisfied
  (Listing 2 line 7 seeds the ``Y`` chain with these).

NumPy kernels drop the GIL during array work, so this executes with
genuine overlap for the BLAS-heavy tasks, though Python-level task
management is serialized — which is why performance *claims* come from
the simulator while this module demonstrates the model end-to-end.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional

__all__ = [
    "Future",
    "HPXPool",
    "async_run",
    "dataflow",
    "make_ready_future",
    "unwrapping",
]


class Future:
    """A shared future: write-once value with completion callbacks."""

    def __init__(self):
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._value = None
        self._exception: Optional[BaseException] = None
        self._callbacks = []

    # ------------------------------------------------------------------
    def set_result(self, value) -> None:
        with self._lock:
            if self._event.is_set():
                raise RuntimeError("future already satisfied")
            self._value = value
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def set_exception(self, exc: BaseException) -> None:
        with self._lock:
            if self._event.is_set():
                raise RuntimeError("future already satisfied")
            self._exception = exc
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    # ------------------------------------------------------------------
    def get(self, timeout: Optional[float] = None):
        """Block until ready; re-raises a stored exception."""
        if not self._event.wait(timeout):
            raise TimeoutError("future not ready")
        if self._exception is not None:
            raise self._exception
        return self._value

    def is_ready(self) -> bool:
        return self._event.is_set()

    def then(self, callback: Callable[["Future"], None]) -> None:
        """Run ``callback(self)`` once ready (immediately if already)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)


def make_ready_future(value=None) -> Future:
    """A future that is already satisfied (``hpx::make_ready_future``)."""
    f = Future()
    f.set_result(value)
    return f


class HPXPool:
    """Thread pool standing in for the HPX thread manager.

    Use as a context manager; ``--hpx:threads`` maps to ``n_threads``.
    """

    def __init__(self, n_threads: int = 4):
        self._pool = ThreadPoolExecutor(max_workers=n_threads)
        self.n_threads = n_threads

    def submit(self, fn, *args, **kwargs):
        return self._pool.submit(fn, *args, **kwargs)

    def shutdown(self):
        self._pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


def async_run(pool: HPXPool, fn: Callable, *args, **kwargs) -> Future:
    """``hpx::async``: run ``fn`` on the pool, return its future."""
    out = Future()

    def body():
        try:
            out.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # propagate through the future
            out.set_exception(exc)

    pool.submit(body)
    return out


def dataflow(pool: HPXPool, fn: Callable, *args, **kwargs) -> Future:
    """``hpx::dataflow``: fire ``fn`` when every future argument is ready.

    Future arguments are replaced by their values; plain arguments
    (including lists of futures, which are awaited element-wise as
    HPX's vector-of-futures overload does) pass through.
    """
    out = Future()
    deps = []
    for a in args:
        if isinstance(a, Future):
            deps.append(a)
        elif isinstance(a, (list, tuple)):
            deps.extend(x for x in a if isinstance(x, Future))
    remaining = len(deps)
    lock = threading.Lock()

    def unwrap(a):
        if isinstance(a, Future):
            return a.get()
        if isinstance(a, (list, tuple)):
            return type(a)(x.get() if isinstance(x, Future) else x for x in a)
        return a

    def launch():
        def body():
            try:
                out.set_result(fn(*[unwrap(a) for a in args], **kwargs))
            except BaseException as exc:
                out.set_exception(exc)

        pool.submit(body)

    if remaining == 0:
        launch()
        return out

    def on_dep_ready(_f):
        nonlocal remaining
        with lock:
            remaining -= 1
            fire = remaining == 0
        if fire:
            launch()

    for d in deps:
        d.then(on_dep_ready)
    return out


def unwrapping(fn: Callable) -> Callable:
    """``hpx::util::unwrapping``: adapt a plain function to future args.

    With :func:`dataflow` already unwrapping, this is mostly a fidelity
    shim for code written in the Listing 2 style; it also lets plain
    call sites pass futures directly.
    """

    def wrapped(*args, **kwargs):
        plain = [a.get() if isinstance(a, Future) else a for a in args]
        return fn(*plain, **kwargs)

    wrapped.__name__ = getattr(fn, "__name__", "unwrapped")
    return wrapped
