"""Runtime façade: one interface for all four solver versions.

A runtime couples a DAG decomposition policy (its
:class:`~repro.graph.builder.BuildOptions`) with an execution strategy
(a scheduler on the event engine, or the BSP phase executor) on one
simulated machine.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.graph.builder import BuildOptions, DAGBuilder
from repro.graph.dag import TaskDAG
from repro.machine.topology import MachineSpec
from repro.sim.engine import RunResult

__all__ = ["Runtime", "build_solver_dag"]


def build_solver_dag(
    matrix,
    calls,
    chunked: Dict[str, int],
    small: Dict[str, Tuple[int, int]],
    matrix_name: str = "A",
    options: Optional[BuildOptions] = None,
) -> TaskDAG:
    """Expand a solver trace over a CSB matrix (or block census)."""
    builder = DAGBuilder(
        matrix,
        matrix_name=matrix_name,
        chunked=chunked,
        small=small,
        options=options or BuildOptions(),
    )
    return builder.build(calls)


class Runtime:
    """Abstract solver-version runner.

    Parameters
    ----------
    machine:
        Simulated node the version runs on.
    first_touch:
        NUMA page-placement policy (§5.1 Fig. 5 ablation).
    seed:
        Determinism seed for stochastic scheduling decisions.
    """

    name = "abstract"
    #: decomposition defaults; subclasses override for their ablations
    default_options = BuildOptions()

    def __init__(
        self,
        machine: MachineSpec,
        first_touch: bool = True,
        seed: int = 0,
        options: Optional[BuildOptions] = None,
    ):
        self.machine = machine
        self.first_touch = first_touch
        self.seed = seed
        self.options = options or self.default_options

    # ------------------------------------------------------------------
    def build_dag(
        self, matrix, calls, chunked, small, matrix_name: str = "A"
    ) -> TaskDAG:
        """Decompose a trace with this runtime's preferred options."""
        return build_solver_dag(
            matrix, calls, chunked, small, matrix_name, self.options
        )

    def execute(self, dag: TaskDAG, iterations: int = 1,
                tracer=None, faults=None) -> RunResult:
        """Run the DAG for ``iterations`` barriered repetitions.

        ``tracer`` (optional :class:`repro.trace.Tracer`) attaches the
        observability layer; results are bit-identical either way.
        ``faults`` (optional :class:`repro.faults.FaultPlan`) attaches
        deterministic fault injection; an empty plan is bit-identical
        to ``faults=None``.
        """
        raise NotImplementedError

    def run(
        self, matrix, calls, chunked, small, iterations: int = 1,
        matrix_name: str = "A", tracer=None, faults=None,
    ) -> RunResult:
        """Build + execute in one step (the common benchmark path)."""
        dag = self.build_dag(matrix, calls, chunked, small, matrix_name)
        return self.execute(dag, iterations=iterations, tracer=tracer,
                            faults=faults)

    def __repr__(self):
        return f"{type(self).__name__}({self.machine.name})"
