"""Real execution of task DAGs: serial validator and thread-pool runtime.

This is the end-to-end proof that the DAGs are *correct programs*, not
just cost structures: every task has an executable body over the
workspace, and running the DAG (in any legal order, serially or on
threads) must produce the same numbers as the eager solver.

Performance caveat, per the repro plan: CPython's GIL serializes task
management, so threading here demonstrates the model and validates
correctness; the paper's performance comparisons are reproduced by the
simulator.
"""

from __future__ import annotations

import threading
import time as _time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional

import numpy as np

from repro.graph.dag import TaskDAG
from repro.solvers.smallops import run_small_op
from repro.solvers.workspace import Workspace

__all__ = ["execute_task", "execute_dag_serial", "ThreadedRuntime"]


def _alpha_value(p: dict, ws: Workspace) -> float:
    """Resolve a task's scalar coefficient (constant or named + op)."""
    name = p.get("alpha_name")
    if name is None:
        return float(p.get("alpha", 1.0))
    v = ws.scalar(name)
    op = p.get("alpha_op", "identity")
    if op == "identity":
        return v
    if op == "neg":
        return -v
    if op == "inv":
        return 1.0 / v if v != 0.0 else 0.0
    if op == "neg_inv":
        return -1.0 / v if v != 0.0 else 0.0
    raise ValueError(f"unknown alpha_op {op!r}")


def execute_task(task, ws: Workspace) -> None:
    """Run one task's kernel body against the workspace (in place)."""
    k = task.kernel
    p = task.params
    if k in ("SPMV", "SPMM"):
        i, j = p["i"], p["j"]
        X = ws.chunk(p["X"], j)
        if p.get("buffer"):
            Y = ws.buffers[(p["Y"], i)]
        else:
            Y = ws.chunk(p["Y"], i)
        if p.get("zero_first"):
            Y[:] = 0.0
        ws.matrix.block_spmm(i, j, X, Y)
    elif k in ("SPMM_REDUCE",):
        i = p["i"]
        Y = ws.chunk(p["out"], i)
        Y[:] = 0.0
        for buf in p["bufs"]:
            Y += ws.buffers[(buf, i)]
    elif k == "XY":
        i = p["i"]
        Y = ws.chunk(p["Y"], i)
        Z = ws.smallarr(p["Z"])
        Q = ws.chunk(p["Q"], i)
        if p.get("accumulate"):
            Q += p.get("beta", 1.0) * (Y @ Z)
        else:
            np.matmul(Y, Z, out=Q)
    elif k == "XTY":
        i = p["i"]
        X = ws.chunk(p["X"], i)
        Y = ws.chunk(p["Y"], i)
        ws.buffers[(p["buf"], i)][:] = X.T @ Y
    elif k == "XTY_REDUCE":
        out = ws.smallarr(p["out"])
        out[:] = 0.0
        for i in range(p["n_parts"]):
            out += ws.buffers[(p["buf"], i)]
    elif k == "AXPY":
        i = p["i"]
        ws.chunk(p["Y"], i)[:] += _alpha_value(p, ws) * ws.chunk(p["X"], i)
    elif k == "SCALE":
        i = p["i"]
        X = ws.chunk(p["X"], i)
        a = _alpha_value(p, ws)
        if a == 0.0:
            X[:] = 0.0
        else:
            X *= a
    elif k == "COPY":
        i = p["i"]
        src = ws.chunk(p["X"], i)
        dst = ws.chunk(p["Y"], i)
        col = p.get("col")
        if col is None:
            dst[:] = src
        else:
            dst[:, int(col)] = src[:, int(p.get("src_col", 0))]
    elif k == "DIAGSCALE":
        i = p["i"]
        np.multiply(ws.chunk(p["D"], i), ws.chunk(p["X"], i),
                    out=ws.chunk(p["OUT"], i))
    elif k == "ADD":
        i = p["i"]
        np.add(ws.chunk(p["X"], i), ws.chunk(p["Y"], i),
               out=ws.chunk(p["OUT"], i))
    elif k == "SUB":
        i = p["i"]
        np.subtract(ws.chunk(p["X"], i), ws.chunk(p["Y"], i),
                    out=ws.chunk(p["OUT"], i))
    elif k == "DOT":
        i = p["i"]
        ws.buffers[(p["buf"], i)] = float(
            np.dot(ws.chunk(p["X"], i).ravel(), ws.chunk(p["Y"], i).ravel())
        )
    elif k == "DOT_REDUCE":
        s = sum(ws.buffers[(p["buf"], i)] for i in range(len(task.reads)))
        if p.get("post") == "sqrt":
            s = float(np.sqrt(max(s, 0.0)))
        ws.set_scalar(p["out"], s)
    else:
        # dense-small kind: dispatch by op name
        run_small_op(ws, p)


def execute_dag_serial(dag: TaskDAG, ws: Workspace,
                       order: Optional[List[int]] = None) -> None:
    """Execute every task in a legal order on the calling thread."""
    ws.prepare_buffers(dag)
    if order is None:
        order = dag.topo_order()
    else:
        dag.check_schedule(order)
    for tid in order:
        execute_task(dag.tasks[tid], ws)


class ThreadedRuntime:
    """Dependency-driven thread-pool execution of a task DAG.

    NumPy kernels release the GIL during array work, so BLAS-heavy
    DAGs overlap for real; used in examples and equivalence tests.
    """

    name = "threaded"

    def __init__(self, n_workers: int = 4):
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = n_workers

    def execute(self, dag: TaskDAG, ws: Workspace,
                iterations: int = 1) -> float:
        """Run the DAG ``iterations`` times; returns elapsed seconds."""
        ws.prepare_buffers(dag)
        t0 = _time.perf_counter()
        for _ in range(iterations):
            self._run_once(dag, ws)
        return _time.perf_counter() - t0

    def _run_once(self, dag: TaskDAG, ws: Workspace) -> None:
        n = len(dag)
        if n == 0:
            return
        indeg = dag.in_degrees()
        lock = threading.Lock()
        done = threading.Event()
        remaining = n
        errors: List[BaseException] = []
        pool = ThreadPoolExecutor(max_workers=self.n_workers)

        def body(tid):
            nonlocal remaining
            try:
                execute_task(dag.tasks[tid], ws)
            except BaseException as exc:
                with lock:
                    errors.append(exc)
                    done.set()
                return
            ready = []
            with lock:
                remaining -= 1
                if remaining == 0:
                    done.set()
                for v in dag.succ[tid]:
                    indeg[v] -= 1
                    if indeg[v] == 0:
                        ready.append(v)
            for v in ready:
                pool.submit(body, v)

        # Snapshot the sources before any worker can decrement indeg:
        # submitting from a live read of indeg would double-submit a
        # task that a fast worker enables mid-loop.
        sources = [tid for tid in range(n) if indeg[tid] == 0]
        for tid in sources:
            pool.submit(body, tid)
        done.wait()
        pool.shutdown(wait=True)
        if errors:
            raise errors[0]
