"""HPX: future/dataflow execution with NUMA-aware scheduling (§3.2).

The Listing 2 structure — per-chunk ``shared_future`` chains, dataflow
nodes firing when inputs are ready, empty blocks skipped — is what the
DAG builder produces; this runtime adds HPX's scheduling personality:
NUMA-domain queues fed by scheduling hints (the §5.1 optimization worth
≈50 % on EPYC), work stealing across domains, and weak prioritization
of early-spawned tasks.
"""

from __future__ import annotations

from repro.graph.builder import BuildOptions
from repro.machine.topology import MachineSpec
from repro.runtime.base import Runtime
from repro.sim.engine import RunResult, SimulationEngine
from repro.sim.schedulers import HPXScheduler

__all__ = ["HPXRuntime"]


class HPXRuntime(Runtime):
    """Dataflow execution under the HPX scheduling model."""

    name = "hpx"
    default_options = BuildOptions(skip_empty=True, spmm_mode="dependency")

    def __init__(
        self,
        machine: MachineSpec,
        first_touch: bool = True,
        seed: int = 0,
        options: BuildOptions = None,
        overhead_per_task: float = 0.55e-6,
        spawn_cost: float = 0.25e-6,
        numa_aware: bool = True,
        shuffle_window: int = 8,
    ):
        super().__init__(machine, first_touch, seed, options)
        self.overhead_per_task = overhead_per_task
        self.spawn_cost = spawn_cost
        self.numa_aware = numa_aware
        self.shuffle_window = shuffle_window

    def make_scheduler(self) -> HPXScheduler:
        return HPXScheduler(
            overhead_per_task=self.overhead_per_task,
            spawn_cost=self.spawn_cost,
            numa_aware=self.numa_aware,
            shuffle_window=self.shuffle_window,
        )

    def execute(self, dag, iterations: int = 1, tracer=None,
                faults=None) -> RunResult:
        engine = SimulationEngine(
            self.machine, first_touch=self.first_touch, seed=self.seed
        )
        return engine.run(dag, self.make_scheduler(),
                          iterations=iterations, tracer=tracer,
                          faults=faults)
