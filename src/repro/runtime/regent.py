"""Regent: region/privilege dependence analysis on Legion (§3.3).

Regent discovers the same DAG implicitly from privileges; what it adds
— and what this runtime models — is the *cost* of that discovery: a
serial dependence-analysis pipeline (cheap only for
``__demand(__index_launch)`` loops), per-task mapping overhead, and a
``-ll:util`` core split that removes workers (4/28 on Broadwell, 18/128
on EPYC in the paper's tuning).  The reduction-privilege SpMM variant
(Fig. 7) is selected with ``options=BuildOptions(spmm_mode="reduction")``.
"""

from __future__ import annotations

from repro.graph.builder import BuildOptions
from repro.machine.topology import MachineSpec
from repro.runtime.base import Runtime
from repro.sim.engine import RunResult, SimulationEngine
from repro.sim.schedulers import RegentScheduler

__all__ = ["RegentRuntime"]


class RegentRuntime(Runtime):
    """Legion-style execution: analysis pipeline + reserved util cores."""

    name = "regent"
    default_options = BuildOptions(skip_empty=True, spmm_mode="dependency")

    def __init__(
        self,
        machine: MachineSpec,
        first_touch: bool = True,
        seed: int = 0,
        options: BuildOptions = None,
        overhead_per_task: float = 0.8e-6,
        analysis_cost: float = 15.0e-6,
        index_launch_cost: float = 0.25e-6,
        util_fraction: float = None,
        dynamic_tracing: bool = False,
    ):
        super().__init__(machine, first_touch, seed, options)
        self.overhead_per_task = overhead_per_task
        self.analysis_cost = analysis_cost
        self.index_launch_cost = index_launch_cost
        self.dynamic_tracing = dynamic_tracing
        if util_fraction is None:
            # Paper's empirically-optimal -ll:cpu/-ll:util splits.
            util_fraction = 4 / 28 if machine.n_cores <= 32 else 18 / 128
        self.util_fraction = util_fraction

    def make_scheduler(self) -> RegentScheduler:
        return RegentScheduler(
            overhead_per_task=self.overhead_per_task,
            analysis_cost=self.analysis_cost,
            index_launch_cost=self.index_launch_cost,
            util_fraction=self.util_fraction,
            dynamic_tracing=self.dynamic_tracing,
        )

    def execute(self, dag, iterations: int = 1, tracer=None,
                faults=None) -> RunResult:
        engine = SimulationEngine(
            self.machine, first_touch=self.first_touch, seed=self.seed
        )
        return engine.run(dag, self.make_scheduler(),
                          iterations=iterations, tracer=tracer,
                          faults=faults)
