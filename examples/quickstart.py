"""Quickstart: solve an eigenproblem, then compare the five runtimes.

1. Generate a scaled suite matrix and tile it into CSB blocks.
2. Compute its smallest eigenpairs with the eager LOBPCG solver.
3. Express one LOBPCG iteration as a task DAG and execute it under all
   five solver versions of the paper on the simulated Broadwell node.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis.experiment import run_cell
from repro.matrices import CSBMatrix, load_matrix
from repro.solvers import lobpcg


def main():
    # -- 1. a matrix from the Table 1 suite, laptop-scaled ------------
    coo = load_matrix("nlpkkt160", scale=8192)
    csb = CSBMatrix.from_coo(coo, block_size=128)
    print(f"nlpkkt160 (scaled): {csb.shape[0]} rows, {csb.nnz} nonzeros, "
          f"{csb.nbr}x{csb.nbc} CSB blocks "
          f"({csb.n_empty_blocks()} empty)")

    # -- 2. eager LOBPCG vs dense reference ---------------------------
    res = lobpcg(csb, n=4, maxiter=80, tol=1e-7)
    ref = np.linalg.eigvalsh(csb.to_dense())[:4]
    print("\nsmallest eigenvalues (LOBPCG vs dense reference):")
    for got, want in zip(res.eigenvalues, ref):
        print(f"  {got:12.6f}  vs  {want:12.6f}")
    print(f"iterations: {res.iterations}, "
          f"final residual: {res.history.final_residual:.2e}")

    # -- 3. the paper's five versions on the simulated Broadwell ------
    print("\nsimulated Broadwell node, LOBPCG at full paper scale:")
    cell = run_cell("broadwell", "nlpkkt160", "lobpcg",
                    block_count=48, iterations=2)
    base = cell.results["libcsr"]
    print(f"  {'version':12s}{'t/iter (ms)':>13s}{'speedup':>9s}"
          f"{'L3 misses vs libcsr':>21s}")
    for v, r in cell.results.items():
        speed = r.speedup_over(base)
        l3 = cell.miss_reduction(v, 3) if v != "libcsr" else 1.0
        print(f"  {v:12s}{r.time_per_iteration * 1e3:13.2f}"
              f"{speed:9.2f}{l3:19.2f}x")


if __name__ == "__main__":
    main()
