"""Execution flow graphs: watch BSP phases vs AMT pipelining.

Renders Fig. 10/13-style Gantt charts for the libcsr baseline and the
DeepSparse/HPX task versions on one LOBPCG iteration of a mid-size
matrix — the pipelined interleaving of SpMM, XY and XTY tasks is
visible directly in the per-core rows.

Run:  python examples/execution_flowgraph.py
"""

from repro.analysis.experiment import run_version
from repro.analysis.gantt import render_flow

MATRIX = "Queen4147"


def main():
    for version in ("libcsr", "deepsparse", "hpx"):
        res = run_version("broadwell", MATRIX, "lobpcg", version,
                          block_count=48, iterations=1)
        print()
        print(render_flow(res, width=96, max_cores=10))
        print("-" * 100)


if __name__ == "__main__":
    main()
