"""Beyond the paper: CG linear solves, preconditioning, reordering.

Three library extensions on one workflow — solving a shifted linear
system from the nlpkkt family:

1. RCM-reorder a scrambled matrix to recover its band (fewer non-empty
   CSB blocks ⇒ fewer SpMM tasks),
2. solve ``A x = b`` with the task-decomposable CG solver,
3. compute the smallest eigenpairs with Jacobi-preconditioned LOBPCG
   and compare iteration counts against the unpreconditioned run.

Run:  python examples/cg_reordering.py
"""

import numpy as np

from repro.matrices import CSBMatrix, load_matrix
from repro.matrices.reorder import bandwidth, permute, rcm_ordering
from repro.solvers import cg, lobpcg


def main():
    coo = load_matrix("Flan_1565", scale=16384)
    rng = np.random.default_rng(0)

    # -- 1. scramble, then recover the band with RCM -------------------
    scrambled = permute(coo, rng.permutation(coo.shape[0]))
    recovered = permute(scrambled, rcm_ordering(scrambled))
    for label, m in [("original", coo), ("scrambled", scrambled),
                     ("RCM-recovered", recovered)]:
        csb = CSBMatrix.from_coo(m, 64)
        print(f"{label:15s} bandwidth {bandwidth(m):6d}, "
              f"non-empty blocks {len(csb.nonempty_blocks()):5d} "
              f"of {csb.nbr * csb.nbc}")

    # -- 2. CG linear solve on the recovered matrix --------------------
    A = CSBMatrix.from_coo(recovered, 64)
    b = rng.standard_normal(A.shape[0])
    res = cg(A, b, maxiter=400, tol=1e-10)
    x = res.x[:, 0]
    rr = np.linalg.norm(A.spmv(x) - b) / np.linalg.norm(b)
    print(f"\nCG: converged={res.converged} in {res.iterations} "
          f"iterations, relative residual {rr:.2e}")

    # -- 3. Jacobi preconditioning for LOBPCG --------------------------
    plain = lobpcg(A, n=4, maxiter=60, tol=1e-9)
    prec = lobpcg(A, n=4, maxiter=60, tol=1e-9, precondition=True)
    print(f"\nLOBPCG residual after {plain.iterations} iterations:")
    print(f"  plain          : {plain.history.final_residual:.3e}")
    print(f"  Jacobi-precond : {prec.history.final_residual:.3e}")
    print("  eigenvalues    :", np.round(prec.eigenvalues, 6))


if __name__ == "__main__":
    main()
