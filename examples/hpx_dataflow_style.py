"""Listing 2 live: the HPX future/dataflow programming model.

Reproduces the paper's HPX code structure on real threads — per-chunk
``shared_future`` chains, ``dataflow`` nodes for SpMM / XY / XTY tasks,
a vector-of-futures reduce, empty blocks skipped — and checks the
result against the dense computation.

Run:  python examples/hpx_dataflow_style.py
"""

import numpy as np

from repro.matrices import CSBMatrix, load_matrix
from repro.runtime.futures import HPXPool, dataflow, make_ready_future


def main():
    coo = load_matrix("inline1", scale=16384)
    csb = CSBMatrix.from_coo(coo, block_size=128)
    np_ = csb.nbr
    n = 4
    rng = np.random.default_rng(0)
    X = rng.standard_normal((csb.shape[0], n))
    Y = np.zeros_like(X)
    Q = np.zeros_like(X)
    Z = rng.standard_normal((n, n))
    P_parts = [np.zeros((n, n)) for _ in range(np_)]

    def bounds(i):
        return csb.row_block_bounds(i)

    def spmm(i, j):
        rs, re = bounds(i)
        cs, ce = bounds(j)
        csb.block_spmm(i, j, X[cs:ce], Y[rs:re])

    def f_dgemm(i):
        rs, re = bounds(i)
        np.matmul(Y[rs:re], Z, out=Q[rs:re])

    def f_dgemm_t(i):
        rs, re = bounds(i)
        P_parts[i][:] = Y[rs:re].T @ Q[rs:re]

    def reduce_buf(_partials_ready):
        return sum(P_parts)

    skipped = 0
    with HPXPool(n_threads=8) as pool:
        # Listing 2, line 7: seed each Y chain with a ready future.
        y_ftr = [make_ready_future() for _ in range(np_)]
        q_ftr = [None] * np_
        p_prtl_ftr = [None] * np_
        # Y = A * X  — dependency-based output: Y_ftr[i] depends on itself.
        for i in range(np_):
            for j in range(np_):
                if csb.block_nnz(i, j) > 0:
                    y_ftr[i] = dataflow(
                        pool, lambda _p, i=i, j=j: spmm(i, j), y_ftr[i]
                    )
                else:
                    skipped += 1  # line 16: skip the empty matrix blocks
        # Q = Y * Z
        for i in range(np_):
            q_ftr[i] = dataflow(pool, lambda _p, i=i: f_dgemm(i), y_ftr[i])
        # P = Y' * Q  (partials fire on Y_i AND Q_i readiness)
        for i in range(np_):
            p_prtl_ftr[i] = dataflow(
                pool, lambda _a, _b, i=i: f_dgemm_t(i), y_ftr[i], q_ftr[i]
            )
        # reduce_buffer fires once every partial future is ready.
        p_rdcd_ftr = dataflow(pool, reduce_buf, p_prtl_ftr)
        P = p_rdcd_ftr.get(timeout=60)

    Yref = csb.spmm(X)
    print(f"{np_}x{np_} blocks, {skipped} empty SpMM tasks skipped")
    print("Y  = A X     :", np.allclose(Y, Yref, atol=1e-10))
    print("Q  = Y Z     :", np.allclose(Q, Yref @ Z, atol=1e-10))
    print("P  = Y' Q    :", np.allclose(P, Yref.T @ (Yref @ Z), atol=1e-8))


if __name__ == "__main__":
    main()
