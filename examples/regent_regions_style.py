"""Listing 3 live: the Regent region/privilege programming model.

The same pseudocode as the HPX example, written Regent-style: regions
partitioned into disjoint subregions, tasks declaring privileges, the
runtime discovering parallelism by interference analysis, and
``__demand(__index_launch)`` loops for the non-interfering dgemm tasks.

Run:  python examples/regent_regions_style.py
"""

import numpy as np

from repro.matrices import CSBMatrix, load_matrix
from repro.runtime.regions import Region, RegionRuntime, task


def main():
    coo = load_matrix("Queen4147", scale=32768)
    csb = CSBMatrix.from_coo(coo, block_size=64)
    np_ = csb.nbr
    n = 4
    rng = np.random.default_rng(0)

    Xlr = Region(rng.standard_normal((csb.shape[0], n)), "X")
    Ylr = Region(np.zeros((csb.shape[0], n)), "Y")
    Qlr = Region(np.zeros((csb.shape[0], n)), "Q")
    Z = rng.standard_normal((n, n))
    P_parts = [np.zeros((n, n)) for _ in range(np_)]

    # partition(equal, region, ispace(np))
    Xlp, Ylp, Qlp = (r.partition(np_) for r in (Xlr, Ylr, Qlr))

    @task(rX="read", rY="read_write")
    def SpMM(rX, rY, i, j):
        csb.block_spmm(i, j, rX.data, rY.data)

    @task(rY="read", rQ="write")
    def f_dgemm(rY, rQ):
        np.matmul(rY.data, Z, out=rQ.data)

    @task(rY="read", rQ="read")
    def f_dgemm_t(rY, rQ, i):  # reduce privilege on tiny P ≈ private part
        P_parts[i][:] = rY.data.T @ rQ.data

    rt = RegionRuntime()
    # Y = A * X : launches look sequential; privileges expose parallelism
    for i in range(np_):
        for j in range(np_):
            if csb.block_nnz(i, j) > 0:  # blkptrs[i*np+j] < blkptrs[...+1]
                rt.launch(SpMM, Xlp[j], Ylp[i], i, j)
    # __demand(__index_launch) loops: verified non-interfering batches
    rt.index_launch(np_, f_dgemm, lambda i: (Ylp[i], Qlp[i]))
    rt.index_launch(np_, f_dgemm_t, lambda i: (Ylp[i], Qlp[i], i))

    n_launches = len(rt._launches)
    n_edges = len(rt.dependence_edges)
    rt.execute(n_threads=8)
    P = sum(P_parts)

    Yref = csb.spmm(Xlr.data)
    print(f"{n_launches} task launches, {n_edges} dependences discovered "
          "from privileges")
    print("Y  = A X     :", np.allclose(Ylr.data, Yref, atol=1e-10))
    print("Q  = Y Z     :", np.allclose(Qlr.data, Yref @ Z, atol=1e-10))
    print("P  = Y' Q    :", np.allclose(P, Yref.T @ (Yref @ Z), atol=1e-8))


if __name__ == "__main__":
    main()
