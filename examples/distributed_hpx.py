"""The paper's future work, prototyped: HPX on distributed memory.

Strong-scales LOBPCG on nlpkkt240 across 1–8 simulated Broadwell
nodes, comparing an InfiniBand-class fabric against commodity 10 GbE —
the question §6 leaves open is precisely where communication eats the
intra-node AMT gains.

Run:  python examples/distributed_hpx.py
"""

from repro.analysis.experiment import _trace
from repro.distributed import (
    DistributedHPXRuntime,
    ethernet_cluster,
    ib_cluster,
)
from repro.machine import broadwell
from repro.matrices.suite import SUITE
from repro.runtime.base import build_solver_dag
from repro.tuning.blocksize import block_size_for_count

MATRIX = "nlpkkt240"


def main():
    spec = SUITE[MATRIX]
    bs = block_size_for_count(spec.paper_rows, 96)
    cen, calls, chunked, small = _trace(MATRIX, bs, "lobpcg", 8)
    dag = build_solver_dag(cen, calls, chunked, small)
    print(f"{MATRIX}: {spec.paper_rows:,} rows, {cen.nnz:,} nonzeros, "
          f"{len(dag)} tasks/iteration\n")
    for label, mk in (("InfiniBand", ib_cluster),
                      ("10 GbE", ethernet_cluster)):
        print(f"-- {label} --")
        single = None
        for n in (1, 2, 4, 8):
            r = DistributedHPXRuntime(mk(broadwell(), n)).execute(dag)
            single = single or r
            print(f"  {n} node(s): {r.time_per_iteration * 1e3:8.2f} "
                  f"ms/iter (compute {r.compute_time * 1e3:8.2f}, "
                  f"halo {r.halo_time * 1e3:7.2f}), "
                  f"speedup {r.speedup_over(single):5.2f}x, "
                  f"efficiency {r.parallel_efficiency(single):5.2f}")
        print()


if __name__ == "__main__":
    main()
