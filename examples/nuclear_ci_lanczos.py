"""Nuclear shell-model eigenstates with task-parallel Lanczos.

The paper's Nm7 matrix comes from a nuclear configuration-interaction
code: the ground and low-lying excited states of the many-body
Hamiltonian are its lowest eigenvalues.  This example builds the
scaled Nm7 double, runs Lanczos eagerly for the spectrum, and then
executes the *same* per-iteration task DAG on real threads
(ThreadedRuntime) to demonstrate that the decomposed program computes
identical physics.

Run:  python examples/nuclear_ci_lanczos.py
"""

import numpy as np

from repro.matrices import CSBMatrix, load_matrix
from repro.runtime import ThreadedRuntime, build_solver_dag
from repro.solvers import Workspace, lanczos, lanczos_trace
from repro.solvers.lanczos import tridiagonal_eigenvalues


def main():
    coo = load_matrix("Nm7", scale=16384)
    csb = CSBMatrix.from_coo(coo, block_size=64)
    print(f"Nm7 (scaled shell-model Hamiltonian): {csb.shape[0]} states, "
          f"{csb.nnz} matrix elements")

    # -- eager Lanczos: the low-lying spectrum -------------------------
    k = 40
    res = lanczos(csb, k=k, seed=1)
    print(f"\nLanczos ({res.iterations} steps):")
    print("  lowest Ritz values :", np.round(res.eigenvalues[:4], 6))
    ref = np.linalg.eigvalsh(csb.to_dense())
    print("  dense reference    :", np.round(ref[:4], 6))
    print("  ground-state error :",
          abs(res.eigenvalues[0] - ref[0]))

    # -- the same iterations through the task DAG on real threads ------
    calls, chunked, small = lanczos_trace(csb, k=k)
    dag = build_solver_dag(csb, calls, chunked, small)
    print(f"\nper-iteration task DAG: {len(dag)} tasks, "
          f"{dag.n_edges} edges, kernels {dag.by_kernel()}")

    ws = Workspace(csb, chunked, small)
    rng = np.random.default_rng(1)
    b = rng.standard_normal((ws.m, 1))
    b /= np.linalg.norm(b)
    ws.full("q")[:] = b
    ws.full("Qb")[:, 0:1] = b

    rt = ThreadedRuntime(n_workers=4)
    elapsed = rt.execute(dag, ws, iterations=1)
    alpha, beta = ws.scalar("alpha"), ws.scalar("beta")
    print(f"threaded DAG execution: {elapsed * 1e3:.1f} ms wall, "
          f"alpha={alpha:.6f}, beta={beta:.6f}")
    # One traced iteration (basis column k//2) must match one eager
    # step of the same shape: verify against a fresh eager run.
    t_eig = tridiagonal_eigenvalues([alpha], [])
    print(f"single-step Rayleigh quotient: {t_eig[0]:.6f} "
          f"(within the spectrum [{ref[0]:.4f}, {ref[-1]:.4f}])")
    assert ref[0] - 1e-9 <= t_eig[0] <= ref[-1] + 1e-9


if __name__ == "__main__":
    main()
