"""The §5.4 tuning heuristic: pick a block size without brute force.

Sweeps the six block-count buckets for one matrix on both simulated
nodes, prints the per-bucket times, and compares the winner to the
paper's rule of thumb (DeepSparse: 32–63 on Broadwell, 64–127 on EPYC).

Run:  python examples/block_size_tuning.py
"""

from repro.analysis.experiment import run_version
from repro.matrices.suite import SUITE
from repro.tuning import (
    candidate_block_sizes,
    recommend_block_count,
)

MATRIX = "nlpkkt160"
RUNTIME = "deepsparse"


def main():
    spec = SUITE[MATRIX]
    print(f"tuning {RUNTIME} LOBPCG on {MATRIX} "
          f"({spec.paper_rows:,} rows at paper scale)\n")
    for machine in ("broadwell", "epyc"):
        print(f"-- {machine} --")
        times = {}
        for bucket, bs in candidate_block_sizes(spec.paper_rows).items():
            mid = (bucket[0] + bucket[1]) // 2
            res = run_version(machine, MATRIX, "lobpcg", RUNTIME,
                              block_count=mid, iterations=1)
            times[bucket] = res.time_per_iteration
            print(f"  block count {bucket[0]:3d}-{bucket[1]:<3d} "
                  f"(block size {bs:9,d}): "
                  f"{res.time_per_iteration * 1e3:9.2f} ms/iter")
        best = min(times, key=times.get)
        rule = recommend_block_count(RUNTIME, machine)
        print(f"  measured best bucket : {best[0]}-{best[1]}")
        print(f"  paper rule of thumb  : {rule[0]}-{rule[1]}\n")


if __name__ == "__main__":
    main()
